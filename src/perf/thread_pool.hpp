// Fixed-size thread pool for the embarrassingly parallel hot loops:
// spectral column transforms, HB Jacobian sample sweeps, HB block-
// preconditioner assembly/solves, jitter Monte-Carlo sample paths, and MoM
// panel-matrix fill.
//
// Design constraints:
//  - Workers are created once and persist; parallelFor hands out chunks of
//    `grain` consecutive indices through a single atomic counter, and the
//    calling thread participates, so small trip counts cost no
//    synchronization beyond one mutex round-trip.
//  - Trip counts at or below the grain run inline on the caller — tiny
//    loops never pay the wake-up/dispatch overhead.
//  - A parallelFor issued from inside a worker (nested parallelism) runs
//    inline serially — no deadlock, no oversubscription.
//  - The first exception thrown by any chunk is captured and rethrown on
//    the calling thread.
//  - parallelFor takes a non-owning FunctionRef, not a std::function: the
//    callable lives on the caller's stack for the duration of the batch,
//    so dispatch never heap-allocates — a std::function parameter would
//    box every capture-heavy hot-loop lambda on every call.
//  - Queue/batch state is guarded by an annotated diag::Mutex and checked
//    by Clang Thread Safety Analysis (see diag/thread_annotations.hpp);
//    memory ordering is conservative (acquire/release via mutex +
//    condition_variable) and validated under RFIC_SANITIZE=thread.
//
// Pool size: the process-wide pool reads RFIC_THREADS (positive integer)
// and falls back to the hardware concurrency. setGlobalThreads() — wired to
// `rficsim --threads N` — overrides both, and must run before the first
// global() use.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <vector>

#include "diag/thread_annotations.hpp"

namespace rfic::perf {

/// Non-owning, non-allocating reference to a callable — the parameter type
/// of hot-loop fan-out. The referenced callable must outlive the call (it
/// always does for parallelFor: the batch drains before returning).
template <class Sig>
class FunctionRef;

template <class R, class... Args>
class FunctionRef<R(Args...)> {
 public:
  template <class F, class = std::enable_if_t<
                         !std::is_same_v<std::remove_cvref_t<F>, FunctionRef>>>
  FunctionRef(F&& f)  // NOLINT(google-explicit-constructor): by design —
                      // lambdas bind implicitly at call sites, like
                      // std::function, but without the allocation.
      : obj_(const_cast<void*>(static_cast<const void*>(&f))),
        call_([](void* obj, Args... args) -> R {
          return (*static_cast<std::remove_reference_t<F>*>(obj))(
              static_cast<Args&&>(args)...);
        }) {}

  R operator()(Args... args) const {
    return call_(obj_, static_cast<Args&&>(args)...);
  }

 private:
  void* obj_;
  R (*call_)(void*, Args...);
};

class ThreadPool {
 public:
  /// threads == 0 picks a size from RFIC_THREADS, falling back to the
  /// hardware concurrency (at least 1 worker besides the caller).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool() RFIC_EXCLUDES(mu_);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total lanes working a parallelFor: workers + the calling thread.
  std::size_t concurrency() const { return workers_.size() + 1; }

  /// Run fn(i) for i in [0, n). Blocks until all iterations finish.
  /// fn must be safe to invoke concurrently from multiple threads.
  /// `grain` is the dispatch granularity: n <= grain runs inline on the
  /// calling thread (no wake-up), and workers claim `grain` consecutive
  /// indices per atomic round-trip — size it so one chunk amortizes the
  /// dispatch cost (~1 µs) against the per-index work.
  ///
  /// Two thread-local properties of the calling thread propagate into the
  /// batch: its perf::CounterScope (so per-job counters stay attributed
  /// when work fans out) and its ScopedLaneCap (so a capped job's batches
  /// never occupy more than its share of lanes).
  void parallelFor(std::size_t n, FunctionRef<void(std::size_t)> fn,
                   std::size_t grain = 1) RFIC_EXCLUDES(mu_);

  /// Per-thread cap on how many pool lanes (caller + workers) a batch
  /// dispatched from this thread may occupy — the cooperative "thread
  /// share" of a multi-tenant job (engine::JobSpec::threadShare). A cap of
  /// 1 runs every parallelFor from this thread inline; 0 means uncapped.
  /// RAII: the previous cap is restored on destruction.
  class ScopedLaneCap {
   public:
    explicit ScopedLaneCap(std::size_t lanes);
    ~ScopedLaneCap();
    ScopedLaneCap(const ScopedLaneCap&) = delete;
    ScopedLaneCap& operator=(const ScopedLaneCap&) = delete;

   private:
    std::size_t prev_;
  };

  /// Process-wide pool, sized from setGlobalThreads() > RFIC_THREADS >
  /// hardware concurrency, in that precedence order.
  static ThreadPool& global();

  /// Pin the size of the process-wide pool (rficsim --threads N). Throws
  /// InvalidArgument if the global pool has already been created — the
  /// override must be installed at startup, before any parallel work.
  static void setGlobalThreads(std::size_t threads);

 private:
  struct Batch;
  void workerLoop() RFIC_EXCLUDES(mu_);

  std::vector<std::thread> workers_;
  diag::Mutex mu_;
  std::condition_variable cv_;       ///< wakes workers when a batch arrives
  std::condition_variable doneCv_;   ///< wakes the caller when a batch drains
  Batch* batch_ RFIC_GUARDED_BY(mu_) = nullptr;  ///< current batch
  std::size_t busy_ RFIC_GUARDED_BY(mu_) = 0;    ///< workers inside the batch
  bool stop_ RFIC_GUARDED_BY(mu_) = false;
};

}  // namespace rfic::perf
