// Dense nonsymmetric eigenvalue computation.
//
// Used for: Floquet multipliers of the monodromy matrix in the oscillator
// phase-noise analysis of Section 3 (the oscillatory eigenvalue 1 and its
// eigenvector anchor the perturbation projection vector), and pole
// extraction from reduced-order models in Section 5.
#pragma once

#include "numeric/dense.hpp"

namespace rfic::numeric {

/// All eigenvalues of a real square matrix, unordered.
/// Algorithm: unitary Hessenberg reduction followed by shifted complex QR
/// iteration with deflation.
CVec eigenvalues(const RMat& a);

/// Eigenvalues of a complex square matrix.
CVec eigenvalues(const CMat& a);

/// Right eigenvector for the eigenvalue of `a` closest to `shift`, computed
/// by inverse iteration. The returned vector is 2-norm normalized.
CVec eigenvectorNear(const RMat& a, Complex shift);

/// Left eigenvector (vᴴ a = λ vᴴ ⇔ aᵀ v̄ = λ̄ v̄); computed as the right
/// eigenvector of aᵀ near conj(shift), then conjugated back. For real
/// matrices and real shifts this reduces to the ordinary left eigenvector.
CVec leftEigenvectorNear(const RMat& a, Complex shift);

}  // namespace rfic::numeric
