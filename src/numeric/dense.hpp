// Dense vector and matrix containers with the arithmetic the rest of the
// library needs. Only two element types are used in practice: Real and
// Complex; explicit instantiations of the heavier algorithms live in the
// corresponding .cpp files.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <initializer_list>
#include <vector>

#include "common.hpp"

namespace rfic::numeric {

/// Dense column vector of element type T.
template <class T>
class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t n, T value = T{}) : d_(n, value) {}
  Vec(std::initializer_list<T> init) : d_(init) {}

  std::size_t size() const { return d_.size(); }
  bool empty() const { return d_.empty(); }
  void resize(std::size_t n, T value = T{}) { d_.resize(n, value); }
  void assign(std::size_t n, T value) { d_.assign(n, value); }
  void setZero() { std::fill(d_.begin(), d_.end(), T{}); }

  T& operator[](std::size_t i) { return d_[i]; }
  const T& operator[](std::size_t i) const { return d_[i]; }
  T* data() { return d_.data(); }
  const T* data() const { return d_.data(); }
  auto begin() { return d_.begin(); }
  auto end() { return d_.end(); }
  auto begin() const { return d_.begin(); }
  auto end() const { return d_.end(); }

  Vec& operator+=(const Vec& o) {
    RFIC_REQUIRE(o.size() == size(), "Vec += size mismatch");
    for (std::size_t i = 0; i < size(); ++i) d_[i] += o.d_[i];
    return *this;
  }
  Vec& operator-=(const Vec& o) {
    RFIC_REQUIRE(o.size() == size(), "Vec -= size mismatch");
    for (std::size_t i = 0; i < size(); ++i) d_[i] -= o.d_[i];
    return *this;
  }
  Vec& operator*=(T s) {
    for (auto& v : d_) v *= s;
    return *this;
  }

  friend Vec operator+(Vec a, const Vec& b) { return a += b; }
  friend Vec operator-(Vec a, const Vec& b) { return a -= b; }
  friend Vec operator*(T s, Vec a) { return a *= s; }
  friend Vec operator*(Vec a, T s) { return a *= s; }

 private:
  std::vector<T> d_;
};

using RVec = Vec<Real>;
using CVec = Vec<Complex>;

/// y += alpha * x
template <class T>
void axpy(T alpha, const Vec<T>& x, Vec<T>& y) {
  RFIC_REQUIRE(x.size() == y.size(), "axpy size mismatch");
  for (std::size_t i = 0; i < x.size(); ++i) y[i] += alpha * x[i];
}

/// Euclidean inner product; for complex T this is the sesquilinear form
/// conj(a)·b (conjugate on the first argument).
inline Real dot(const RVec& a, const RVec& b) {
  RFIC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  Real s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}
inline Complex dot(const CVec& a, const CVec& b) {
  RFIC_REQUIRE(a.size() == b.size(), "dot size mismatch");
  Complex s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += std::conj(a[i]) * b[i];
  return s;
}
/// Bilinear (unconjugated) product aᵀb — needed by nonsymmetric Lanczos.
inline Complex dotu(const CVec& a, const CVec& b) {
  RFIC_REQUIRE(a.size() == b.size(), "dotu size mismatch");
  Complex s = 0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

template <class T>
Real norm2(const Vec<T>& v) {
  Real s = 0;
  for (std::size_t i = 0; i < v.size(); ++i) s += std::norm(Complex(v[i]));
  return std::sqrt(s);
}
inline Real norm2(const RVec& v) {
  Real s = 0;
  for (std::size_t i = 0; i < v.size(); ++i) s += v[i] * v[i];
  return std::sqrt(s);
}
template <class T>
Real normInf(const Vec<T>& v) {
  Real m = 0;
  for (std::size_t i = 0; i < v.size(); ++i) m = std::max(m, std::abs(v[i]));
  return m;
}

/// Dense row-major matrix of element type T.
template <class T>
class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, T value = T{})
      : rows_(rows), cols_(cols), d_(rows * cols, value) {}

  static Mat identity(std::size_t n) {
    Mat m(n, n);
    for (std::size_t i = 0; i < n; ++i) m(i, i) = T{1};
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  void setZero() { std::fill(d_.begin(), d_.end(), T{}); }

  /// Reshape to rows×cols, reusing the existing storage when it is large
  /// enough (element values are unspecified afterwards — this is a buffer
  /// primitive for workspace reuse, not a content-preserving reshape).
  void resize(std::size_t rows, std::size_t cols) {
    rows_ = rows;
    cols_ = cols;
    d_.resize(rows * cols);
  }

  T& operator()(std::size_t i, std::size_t j) { return d_[i * cols_ + j]; }
  const T& operator()(std::size_t i, std::size_t j) const {
    return d_[i * cols_ + j];
  }
  T* rowPtr(std::size_t i) { return d_.data() + i * cols_; }
  const T* rowPtr(std::size_t i) const { return d_.data() + i * cols_; }
  T* data() { return d_.data(); }
  const T* data() const { return d_.data(); }

  Mat& operator+=(const Mat& o) {
    RFIC_REQUIRE(o.rows_ == rows_ && o.cols_ == cols_, "Mat += size mismatch");
    for (std::size_t i = 0; i < d_.size(); ++i) d_[i] += o.d_[i];
    return *this;
  }
  Mat& operator-=(const Mat& o) {
    RFIC_REQUIRE(o.rows_ == rows_ && o.cols_ == cols_, "Mat -= size mismatch");
    for (std::size_t i = 0; i < d_.size(); ++i) d_[i] -= o.d_[i];
    return *this;
  }
  Mat& operator*=(T s) {
    for (auto& v : d_) v *= s;
    return *this;
  }
  friend Mat operator+(Mat a, const Mat& b) { return a += b; }
  friend Mat operator-(Mat a, const Mat& b) { return a -= b; }
  friend Mat operator*(T s, Mat a) { return a *= s; }

  /// y = A x
  Vec<T> operator*(const Vec<T>& x) const {
    RFIC_REQUIRE(x.size() == cols_, "matvec size mismatch");
    Vec<T> y(rows_);
    for (std::size_t i = 0; i < rows_; ++i) {
      T s{};
      const T* row = rowPtr(i);
      for (std::size_t j = 0; j < cols_; ++j) s += row[j] * x[j];
      y[i] = s;
    }
    return y;
  }

  /// C = A B
  Mat operator*(const Mat& b) const {
    RFIC_REQUIRE(cols_ == b.rows_, "matmul size mismatch");
    Mat c(rows_, b.cols_);
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const T aik = (*this)(i, k);
        if (aik == T{}) continue;
        const T* brow = b.rowPtr(k);
        T* crow = c.rowPtr(i);
        for (std::size_t j = 0; j < b.cols_; ++j) crow[j] += aik * brow[j];
      }
    }
    return c;
  }

  Mat transposed() const {
    Mat t(cols_, rows_);
    for (std::size_t i = 0; i < rows_; ++i)
      for (std::size_t j = 0; j < cols_; ++j) t(j, i) = (*this)(i, j);
    return t;
  }

 private:
  std::size_t rows_ = 0, cols_ = 0;
  std::vector<T> d_;
};

using RMat = Mat<Real>;
using CMat = Mat<Complex>;

/// y = Aᵀ x (without forming the transpose).
template <class T>
Vec<T> transposeMatvec(const Mat<T>& a, const Vec<T>& x) {
  RFIC_REQUIRE(x.size() == a.rows(), "transposeMatvec size mismatch");
  Vec<T> y(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const T* row = a.rowPtr(i);
    const T xi = x[i];
    for (std::size_t j = 0; j < a.cols(); ++j) y[j] += row[j] * xi;
  }
  return y;
}

/// Frobenius norm.
template <class T>
Real normFro(const Mat<T>& a) {
  Real s = 0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      s += std::norm(Complex(a(i, j)));
  return std::sqrt(s);
}

/// Promote a real matrix/vector to complex.
CMat toComplex(const RMat& a);
CVec toComplex(const RVec& v);
RVec realPart(const CVec& v);

}  // namespace rfic::numeric
