// Dense LU factorization with partial pivoting, for Real and Complex
// matrices. Used for small dense systems throughout the library: HB
// preconditioner blocks, monodromy-based shooting updates, reduced-order
// models, and reference solutions in tests.
#pragma once

#include <vector>

#include "numeric/dense.hpp"

namespace rfic::numeric {

/// LU factorization P·A = L·U held in packed form.
template <class T>
class LU {
 public:
  LU() = default;
  /// Factor a square matrix. Throws NumericalError if singular to working
  /// precision.
  explicit LU(Mat<T> a);

  std::size_t size() const { return lu_.rows(); }

  /// Solve A x = b.
  Vec<T> solve(const Vec<T>& b) const;
  /// Solve A x = b overwriting x (length size()) — no allocations, the
  /// hot path for preconditioner segment solves.
  void solveInPlace(T* x) const;
  /// Solve Aᵀ x = b (plain transpose, no conjugation).
  Vec<T> solveTransposed(const Vec<T>& b) const;
  /// Solve A X = B, all columns against the one factorization.
  Mat<T> solve(const Mat<T>& b) const;

  /// Determinant (product of pivots with sign of the permutation).
  T determinant() const;

 private:
  Mat<T> lu_;
  std::vector<int> piv_;
  int pivSign_ = 1;
};

using RLU = LU<Real>;
using CLU = LU<Complex>;

extern template class LU<Real>;
extern template class LU<Complex>;

/// Convenience: solve A x = b with a one-shot factorization.
template <class T>
Vec<T> solveDense(Mat<T> a, const Vec<T>& b) {
  return LU<T>(std::move(a)).solve(b);
}

/// Inverse via LU — only used on small matrices (reduced models, tests).
template <class T>
Mat<T> inverse(Mat<T> a) {
  const std::size_t n = a.rows();
  return LU<T>(std::move(a)).solve(Mat<T>::identity(n));
}

/// 1-norm condition estimate via explicit inverse — for reporting only
/// (Table 1 bench); O(n³) and fine at the sizes used there.
Real conditionEstimate(const RMat& a);

}  // namespace rfic::numeric
