// Householder QR for real matrices. Used for least-squares fits in the
// benches (scaling-exponent fits), orthonormalization in ROM algorithms,
// and recompression of low-rank factors in the IES³ solver.
#pragma once

#include "numeric/dense.hpp"

namespace rfic::numeric {

/// Thin QR of an m×n matrix with m ≥ n: A = Q R with Q m×n orthonormal
/// columns and R n×n upper triangular.
struct ThinQR {
  RMat q;  ///< m×n, orthonormal columns
  RMat r;  ///< n×n, upper triangular
};

/// Compute a thin QR factorization by Householder reflections.
ThinQR thinQR(const RMat& a);

/// Solve the least-squares problem min ||A x − b||₂ for m ≥ n with full
/// column rank A.
RVec leastSquares(const RMat& a, const RVec& b);

}  // namespace rfic::numeric
