#include "numeric/dense.hpp"

namespace rfic::numeric {

CMat toComplex(const RMat& a) {
  CMat c(a.rows(), a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j) c(i, j) = a(i, j);
  return c;
}

CVec toComplex(const RVec& v) {
  CVec c(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) c[i] = v[i];
  return c;
}

RVec realPart(const CVec& v) {
  RVec r(v.size());
  for (std::size_t i = 0; i < v.size(); ++i) r[i] = v[i].real();
  return r;
}

}  // namespace rfic::numeric
