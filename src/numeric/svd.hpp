// Singular value decomposition by one-sided Jacobi rotations.
//
// The SVD is the workhorse of the IES³-style matrix compression scheme of
// Section 4 of the paper: interaction blocks between well-separated panel
// clusters are recompressed to minimal-rank outer products by truncating
// small singular values.
#pragma once

#include "numeric/dense.hpp"

namespace rfic::numeric {

/// Full thin SVD A = U · diag(s) · Vᵀ of an m×n matrix.
/// U is m×n with orthonormal columns, V is n×n orthogonal, and the singular
/// values are returned in non-increasing order.
struct SVD {
  RMat u;
  RVec s;
  RMat v;
};

/// Compute a thin SVD with one-sided Jacobi (robust, O(m·n²) per sweep).
/// Handles m < n by transposing internally.
SVD svd(const RMat& a);

/// Number of singular values above `tol * s_max`.
std::size_t numericalRank(const SVD& dec, Real tol);

}  // namespace rfic::numeric
