#include "numeric/lu.hpp"

#include "diag/contracts.hpp"

#include <cmath>

namespace rfic::numeric {

template <class T>
LU<T>::LU(Mat<T> a) : lu_(std::move(a)) {
  RFIC_REQUIRE(lu_.rows() == lu_.cols(), "LU: matrix must be square");
  const std::size_t n = lu_.rows();
  piv_.resize(n);

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: largest magnitude in column k at or below row k.
    std::size_t p = k;
    Real pmax = std::abs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const Real v = std::abs(lu_(i, k));
      if (v > pmax) {
        pmax = v;
        p = i;
      }
    }
    if (diag::exactlyZero(pmax)) failNumerical("LU: matrix is singular");
    piv_[k] = static_cast<int>(p);
    if (p != k) {
      pivSign_ = -pivSign_;
      for (std::size_t j = 0; j < n; ++j) std::swap(lu_(k, j), lu_(p, j));
    }
    const T pivot = lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const T m = lu_(i, k) / pivot;
      lu_(i, k) = m;
      if (diag::exactlyZero(m)) continue;
      const T* rowk = lu_.rowPtr(k);
      T* rowi = lu_.rowPtr(i);
      for (std::size_t j = k + 1; j < n; ++j) rowi[j] -= m * rowk[j];
    }
  }
}

template <class T>
void LU<T>::solveInPlace(T* x) const {
  const std::size_t n = size();
  for (std::size_t k = 0; k < n; ++k) {
    const auto p = static_cast<std::size_t>(piv_[k]);
    if (p != k) std::swap(x[k], x[p]);
    // Forward substitution fold into the sweep.
  }
  for (std::size_t k = 0; k < n; ++k) {
    const T xk = x[k];
    if (xk == T{}) continue;
    for (std::size_t i = k + 1; i < n; ++i) x[i] -= lu_(i, k) * xk;
  }
  for (std::size_t k = n; k-- > 0;) {
    T s = x[k];
    const T* row = lu_.rowPtr(k);
    for (std::size_t j = k + 1; j < n; ++j) s -= row[j] * x[j];
    x[k] = s / row[k];
  }
}

template <class T>
Vec<T> LU<T>::solve(const Vec<T>& b) const {
  RFIC_REQUIRE(b.size() == size(), "LU::solve size mismatch");
  Vec<T> x = b;
  solveInPlace(x.data());
  return x;
}

template <class T>
Vec<T> LU<T>::solveTransposed(const Vec<T>& b) const {
  // Aᵀ = (P⁻¹ L U)ᵀ = Uᵀ Lᵀ P, so solve Uᵀ y = b, Lᵀ z = y, x = Pᵀ z.
  const std::size_t n = size();
  RFIC_REQUIRE(b.size() == n, "LU::solveTransposed size mismatch");
  Vec<T> x = b;
  for (std::size_t k = 0; k < n; ++k) {
    T s = x[k];
    for (std::size_t i = 0; i < k; ++i) s -= lu_(i, k) * x[i];
    x[k] = s / lu_(k, k);
  }
  for (std::size_t k = n; k-- > 0;) {
    T s = x[k];
    for (std::size_t i = k + 1; i < n; ++i) s -= lu_(i, k) * x[i];
    x[k] = s;
  }
  for (std::size_t k = n; k-- > 0;) {
    const auto p = static_cast<std::size_t>(piv_[k]);
    if (p != k) std::swap(x[k], x[p]);
  }
  return x;
}

template <class T>
Mat<T> LU<T>::solve(const Mat<T>& b) const {
  RFIC_REQUIRE(b.rows() == size(), "LU::solve(Mat) size mismatch");
  Mat<T> x(b.rows(), b.cols());
  Vec<T> col(b.rows());
  for (std::size_t j = 0; j < b.cols(); ++j) {
    for (std::size_t i = 0; i < b.rows(); ++i) col[i] = b(i, j);
    solveInPlace(col.data());
    for (std::size_t i = 0; i < b.rows(); ++i) x(i, j) = col[i];
  }
  return x;
}

template <class T>
T LU<T>::determinant() const {
  T d = static_cast<T>(pivSign_);
  for (std::size_t k = 0; k < size(); ++k) d *= lu_(k, k);
  return d;
}

template class LU<Real>;
template class LU<Complex>;

Real conditionEstimate(const RMat& a) {
  RFIC_REQUIRE(a.rows() == a.cols(), "conditionEstimate: square required");
  // ||A||_1 * ||A^{-1}||_1 with the inverse formed explicitly.
  auto norm1 = [](const RMat& m) {
    Real best = 0;
    for (std::size_t j = 0; j < m.cols(); ++j) {
      Real s = 0;
      for (std::size_t i = 0; i < m.rows(); ++i) s += std::abs(m(i, j));
      best = std::max(best, s);
    }
    return best;
  };
  RMat inv = inverse(a);
  return norm1(a) * norm1(inv);
}

}  // namespace rfic::numeric
