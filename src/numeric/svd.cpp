#include "numeric/svd.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace rfic::numeric {

namespace {

// One-sided Jacobi on an m×n matrix with m >= n: orthogonalize the columns
// of a working copy W = A·V by plane rotations applied on the right; on
// convergence the column norms are the singular values.
SVD jacobiTall(const RMat& a) {
  const std::size_t m = a.rows(), n = a.cols();
  RMat w = a;
  RMat v = RMat::identity(n);

  const Real eps = 1e-15;
  const int maxSweeps = 60;
  for (int sweep = 0; sweep < maxSweeps; ++sweep) {
    bool rotated = false;
    for (std::size_t p = 0; p + 1 < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        // Gram entries of columns p, q.
        Real app = 0, aqq = 0, apq = 0;
        for (std::size_t i = 0; i < m; ++i) {
          app += w(i, p) * w(i, p);
          aqq += w(i, q) * w(i, q);
          apq += w(i, p) * w(i, q);
        }
        if (std::abs(apq) <= eps * std::sqrt(app * aqq) || apq == 0) continue;
        rotated = true;
        const Real tau = (aqq - app) / (2.0 * apq);
        const Real t = (tau >= 0) ? 1.0 / (tau + std::sqrt(1 + tau * tau))
                                  : 1.0 / (tau - std::sqrt(1 + tau * tau));
        const Real c = 1.0 / std::sqrt(1 + t * t);
        const Real s = c * t;
        for (std::size_t i = 0; i < m; ++i) {
          const Real wp = w(i, p), wq = w(i, q);
          w(i, p) = c * wp - s * wq;
          w(i, q) = s * wp + c * wq;
        }
        for (std::size_t i = 0; i < n; ++i) {
          const Real vp = v(i, p), vq = v(i, q);
          v(i, p) = c * vp - s * vq;
          v(i, q) = s * vp + c * vq;
        }
      }
    }
    if (!rotated) break;
  }

  SVD out;
  out.s = RVec(n);
  out.u = RMat(m, n);
  out.v = v;
  // Column norms -> singular values; normalize columns of W into U.
  std::vector<std::size_t> order(n);
  RVec norms(n);
  for (std::size_t j = 0; j < n; ++j) {
    Real s2 = 0;
    for (std::size_t i = 0; i < m; ++i) s2 += w(i, j) * w(i, j);
    norms[j] = std::sqrt(s2);
  }
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&](std::size_t x, std::size_t y) { return norms[x] > norms[y]; });
  RMat vSorted(n, n);
  for (std::size_t jj = 0; jj < n; ++jj) {
    const std::size_t j = order[jj];
    out.s[jj] = norms[j];
    const Real inv = (norms[j] > 0) ? 1.0 / norms[j] : 0.0;
    for (std::size_t i = 0; i < m; ++i) out.u(i, jj) = w(i, j) * inv;
    for (std::size_t i = 0; i < n; ++i) vSorted(i, jj) = v(i, j);
  }
  out.v = std::move(vSorted);
  return out;
}

}  // namespace

SVD svd(const RMat& a) {
  if (a.rows() >= a.cols()) return jacobiTall(a);
  // A = U S Vᵀ  <=>  Aᵀ = V S Uᵀ
  SVD t = jacobiTall(a.transposed());
  SVD out;
  out.u = std::move(t.v);
  out.s = std::move(t.s);
  out.v = std::move(t.u);
  return out;
}

std::size_t numericalRank(const SVD& dec, Real tol) {
  if (dec.s.size() == 0) return 0;
  const Real cut = tol * dec.s[0];
  std::size_t r = 0;
  while (r < dec.s.size() && dec.s[r] > cut) ++r;
  return r;
}

}  // namespace rfic::numeric
