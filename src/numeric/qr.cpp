#include "numeric/qr.hpp"

#include <cmath>

namespace rfic::numeric {

ThinQR thinQR(const RMat& aIn) {
  const std::size_t m = aIn.rows(), n = aIn.cols();
  RFIC_REQUIRE(m >= n, "thinQR requires rows >= cols");
  // Straightforward (non-packed) Householder implementation: sizes here are
  // small (ROM orders, low-rank block widths), so clarity beats packing.
  RMat a = aIn;
  RVec beta(n);
  RVec rdiag(n);
  for (std::size_t k = 0; k < n; ++k) {
    Real normx = 0;
    for (std::size_t i = k; i < m; ++i) normx += a(i, k) * a(i, k);
    normx = std::sqrt(normx);
    const Real alpha = (a(k, k) >= 0) ? -normx : normx;
    rdiag[k] = alpha;
    if (normx == 0) {
      beta[k] = 0;
      continue;
    }
    a(k, k) -= alpha;
    Real vnorm2 = 0;
    for (std::size_t i = k; i < m; ++i) vnorm2 += a(i, k) * a(i, k);
    beta[k] = (vnorm2 == 0) ? 0 : 2.0 / vnorm2;
    for (std::size_t j = k + 1; j < n; ++j) {
      Real s = 0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * a(i, j);
      s *= beta[k];
      for (std::size_t i = k; i < m; ++i) a(i, j) -= s * a(i, k);
    }
  }

  ThinQR out;
  out.r = RMat(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    out.r(i, i) = rdiag[i];
    for (std::size_t j = i + 1; j < n; ++j) out.r(i, j) = a(i, j);
  }
  // Q = H_0 H_1 ... H_{n-1} applied to the first n columns of I.
  out.q = RMat(m, n);
  for (std::size_t j = 0; j < n; ++j) out.q(j, j) = 1.0;
  for (std::size_t k = n; k-- > 0;) {
    if (beta[k] == 0) continue;
    for (std::size_t j = 0; j < n; ++j) {
      Real s = 0;
      for (std::size_t i = k; i < m; ++i) s += a(i, k) * out.q(i, j);
      s *= beta[k];
      for (std::size_t i = k; i < m; ++i) out.q(i, j) -= s * a(i, k);
    }
  }
  return out;
}

RVec leastSquares(const RMat& a, const RVec& b) {
  RFIC_REQUIRE(a.rows() == b.size(), "leastSquares size mismatch");
  const ThinQR qr = thinQR(a);
  // x = R^{-1} Qᵀ b
  RVec y = transposeMatvec(qr.q, b);
  const std::size_t n = a.cols();
  RVec x(n);
  for (std::size_t k = n; k-- > 0;) {
    Real s = y[k];
    for (std::size_t j = k + 1; j < n; ++j) s -= qr.r(k, j) * x[j];
    const Real d = qr.r(k, k);
    if (d == 0) failNumerical("leastSquares: rank-deficient matrix");
    x[k] = s / d;
  }
  return x;
}

}  // namespace rfic::numeric
