#include "numeric/eig.hpp"

#include <cmath>

#include "numeric/lu.hpp"

namespace rfic::numeric {

namespace {

// Reduce a complex matrix to upper Hessenberg form by Householder
// reflections (similarity transform; the transform itself is discarded
// because only eigenvalues are needed).
void hessenberg(CMat& a) {
  const std::size_t n = a.rows();
  for (std::size_t k = 0; k + 2 < n; ++k) {
    // Build reflector for column k below the subdiagonal.
    Real normx = 0;
    for (std::size_t i = k + 1; i < n; ++i) normx += std::norm(a(i, k));
    normx = std::sqrt(normx);
    if (normx == 0) continue;
    Complex x0 = a(k + 1, k);
    const Real ax0 = std::abs(x0);
    const Complex phase = (ax0 == 0) ? Complex(1, 0) : x0 / ax0;
    const Complex alpha = -phase * normx;
    CVec v(n);
    v[k + 1] = x0 - alpha;
    for (std::size_t i = k + 2; i < n; ++i) v[i] = a(i, k);
    Real vn2 = 0;
    for (std::size_t i = k + 1; i < n; ++i) vn2 += std::norm(v[i]);
    if (vn2 == 0) continue;
    const Real beta = 2.0 / vn2;
    // A <- (I - beta v vᴴ) A
    for (std::size_t j = 0; j < n; ++j) {
      Complex s = 0;
      for (std::size_t i = k + 1; i < n; ++i) s += std::conj(v[i]) * a(i, j);
      s *= beta;
      for (std::size_t i = k + 1; i < n; ++i) a(i, j) -= s * v[i];
    }
    // A <- A (I - beta v vᴴ)
    for (std::size_t i = 0; i < n; ++i) {
      Complex s = 0;
      for (std::size_t j = k + 1; j < n; ++j) s += a(i, j) * v[j];
      s *= beta;
      for (std::size_t j = k + 1; j < n; ++j) a(i, j) -= s * std::conj(v[j]);
    }
  }
}

// Wilkinson shift for the trailing 2x2 block [a b; c d].
Complex wilkinsonShift(Complex a, Complex b, Complex c, Complex d) {
  const Complex tr = a + d;
  const Complex det = a * d - b * c;
  const Complex disc = std::sqrt(tr * tr - 4.0 * det);
  const Complex l1 = 0.5 * (tr + disc);
  const Complex l2 = 0.5 * (tr - disc);
  return (std::abs(l1 - d) < std::abs(l2 - d)) ? l1 : l2;
}

// Shifted QR iteration with Givens rotations on a Hessenberg matrix.
CVec hessenbergQR(CMat h) {
  const std::size_t n = h.rows();
  CVec eig(n);
  std::size_t hi = n;  // active block is rows/cols [0, hi)
  int stall = 0;
  while (hi > 0) {
    if (hi == 1) {
      eig[0] = h(0, 0);
      break;
    }
    // Deflate negligible subdiagonals.
    bool deflated = false;
    for (std::size_t i = hi - 1; i > 0; --i) {
      const Real sub = std::abs(h(i, i - 1));
      const Real diag = std::abs(h(i, i)) + std::abs(h(i - 1, i - 1));
      if (sub <= 1e-15 * (diag + 1e-300)) {
        h(i, i - 1) = 0;
        if (i == hi - 1) {
          eig[hi - 1] = h(hi - 1, hi - 1);
          --hi;
          stall = 0;
          deflated = true;
          break;
        }
      }
    }
    if (deflated) continue;
    if (hi >= 2 && std::abs(h(hi - 1, hi - 2)) == 0) {
      eig[hi - 1] = h(hi - 1, hi - 1);
      --hi;
      stall = 0;
      continue;
    }

    Complex mu = wilkinsonShift(h(hi - 2, hi - 2), h(hi - 2, hi - 1),
                                h(hi - 1, hi - 2), h(hi - 1, hi - 1));
    if (++stall % 30 == 0) {
      // Exceptional shift to break symmetric stalls.
      mu = Complex(1.5 * std::abs(h(hi - 1, hi - 2)),
                   std::abs(h(hi - 1, hi - 1)));
    }
    if (stall > 300) failNumerical("eigenvalues: QR iteration failed to converge");

    // QR step: H - mu I = Q R, H <- R Q + mu I via Givens sweeps.
    // Each Givens G_k = [c s; -s̄ c] (c real) acts on rows (k, k+1); the
    // right-multiplication by Q = G_0ᴴ G_1ᴴ … is applied afterwards.
    for (std::size_t i = 0; i < hi; ++i) h(i, i) -= mu;
    std::vector<Real> cs(hi, 1.0);
    std::vector<Complex> sn(hi, 0.0);
    for (std::size_t k = 0; k + 1 < hi; ++k) {
      const Complex f = h(k, k), g = h(k + 1, k);
      const Real af = std::abs(f), ag = std::abs(g);
      const Real r = std::hypot(af, ag);
      if (r == 0) {
        cs[k] = 1.0;
        sn[k] = 0.0;
        continue;
      }
      const Real c = af / r;
      const Complex s = (af == 0) ? Complex(1, 0)
                                  : (f / af) * std::conj(g) / r;
      cs[k] = c;
      sn[k] = s;
      for (std::size_t j = k; j < hi; ++j) {
        const Complex t1 = h(k, j), t2 = h(k + 1, j);
        h(k, j) = c * t1 + s * t2;
        h(k + 1, j) = -std::conj(s) * t1 + c * t2;
      }
    }
    for (std::size_t k = 0; k + 1 < hi; ++k) {
      const Real c = cs[k];
      const Complex s = sn[k];
      const std::size_t top = std::min(k + 2, hi - 1);
      for (std::size_t i = 0; i <= top; ++i) {
        const Complex t1 = h(i, k), t2 = h(i, k + 1);
        h(i, k) = c * t1 + std::conj(s) * t2;
        h(i, k + 1) = -s * t1 + c * t2;
      }
    }
    for (std::size_t i = 0; i < hi; ++i) h(i, i) += mu;
  }
  return eig;
}

}  // namespace

CVec eigenvalues(const CMat& aIn) {
  RFIC_REQUIRE(aIn.rows() == aIn.cols(), "eigenvalues: square required");
  CMat a = aIn;
  hessenberg(a);
  return hessenbergQR(std::move(a));
}

CVec eigenvalues(const RMat& a) { return eigenvalues(toComplex(a)); }

CVec eigenvectorNear(const RMat& a, Complex shift) {
  RFIC_REQUIRE(a.rows() == a.cols(), "eigenvectorNear: square required");
  const std::size_t n = a.rows();
  CMat shifted = toComplex(a);
  // Small perturbation keeps the factorization well-defined when the shift
  // equals an eigenvalue to machine precision.
  const Real scale = normFro(a) + 1.0;
  const Complex mu = shift + Complex(1e-10 * scale, 1e-10 * scale);
  for (std::size_t i = 0; i < n; ++i) shifted(i, i) -= mu;
  CLU lu(std::move(shifted));
  CVec v(n);
  for (std::size_t i = 0; i < n; ++i) v[i] = 1.0 / std::sqrt(Real(n));
  for (int it = 0; it < 8; ++it) {
    v = lu.solve(v);
    const Real nv = norm2(v);
    if (nv == 0) failNumerical("eigenvectorNear: inverse iteration collapsed");
    v *= Complex(1.0 / nv, 0.0);
  }
  return v;
}

CVec leftEigenvectorNear(const RMat& a, Complex shift) {
  CVec w = eigenvectorNear(a.transposed(), std::conj(shift));
  for (std::size_t i = 0; i < w.size(); ++i) w[i] = std::conj(w[i]);
  return w;
}

}  // namespace rfic::numeric
