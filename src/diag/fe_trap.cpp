#include "diag/fe_trap.hpp"

#include <cfenv>

namespace rfic::diag {

#if defined(__GLIBC__)

ScopedFeTrap::ScopedFeTrap() {
  previousMask_ = fegetexcept();
  feenableexcept(FE_INVALID | FE_DIVBYZERO | FE_OVERFLOW);
}

ScopedFeTrap::~ScopedFeTrap() {
  fedisableexcept(FE_ALL_EXCEPT);
  if (previousMask_ >= 0) feenableexcept(previousMask_);
}

bool ScopedFeTrap::supported() { return true; }

#else

ScopedFeTrap::ScopedFeTrap() = default;
ScopedFeTrap::~ScopedFeTrap() = default;
bool ScopedFeTrap::supported() { return false; }

#endif

}  // namespace rfic::diag
