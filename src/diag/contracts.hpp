// Numerics contracts: runtime checks for the invariants that, when broken,
// produce plausible-but-wrong spectra instead of crashes.
//
// The delicate kernels of this library — matrix-implicit Krylov harmonic
// balance, the Demir/Roychowdhury phase-noise machinery, IES³ compression —
// all share the same failure mode: a NaN or a dimension slip propagates
// silently and corrupts the result without any visible error. This header
// provides two layers of defence:
//
//  * Always-on functions (`checkFinite`, `checkDims`, `exactlyZero`) used
//    at public API boundaries, where the cost is negligible relative to the
//    work behind the call.
//  * `RFIC_CONTRACT` / `RFIC_CHECK_FINITE` / `RFIC_CHECK_DIMS` macros for
//    hot inner loops. They compile to nothing unless `RFIC_DIAG` is
//    defined (the `Diag` build type defines it globally, so every TU in a
//    build agrees and there is no ODR hazard). Use the macros inside .cpp
//    files on hot paths; use the functions at entry points.
//
// Contract violations throw the library's existing exception taxonomy:
// dimension errors are `InvalidArgument` (caller-preventable), non-finite
// values are `NumericalError` (data-dependent).
#pragma once

#include <cmath>
#include <cstddef>
#include <string>

#include "common.hpp"

namespace rfic::diag {

/// True if v is neither NaN nor ±Inf.
inline bool isFinite(Real v) { return std::isfinite(v); }
inline bool isFinite(const Complex& v) {
  return std::isfinite(v.real()) && std::isfinite(v.imag());
}

/// Intentional exact floating-point comparison against zero. Exact-zero
/// tests are legitimate (breakdown guards, unset-value sentinels, skipping
/// exact-zero pivots) but indistinguishable in source from the accidental
/// `==` the numerics lint forbids; routing them through this helper makes
/// the intent auditable. Anything tolerance-like must use an explicit
/// threshold instead.
inline bool exactlyZero(Real v) { return v == Real(0); }  // lint: allow-float-eq
inline bool exactlyZero(const Complex& v) {
  return exactlyZero(v.real()) && exactlyZero(v.imag());
}

/// Throw NumericalError naming `what` if v is NaN or Inf.
inline void checkFinite(Real v, const char* what) {
  if (!isFinite(v))
    failNumerical(std::string(what) + ": non-finite value " +
                  std::to_string(v));
}
inline void checkFinite(const Complex& v, const char* what) {
  if (!isFinite(v))
    failNumerical(std::string(what) + ": non-finite value (" +
                  std::to_string(v.real()) + ", " + std::to_string(v.imag()) +
                  ")");
}

/// Throw NumericalError naming `what` and the offending index if any
/// element of [first, first+n) is NaN or Inf.
template <class T>
void checkFiniteRange(const T* first, std::size_t n, const char* what) {
  for (std::size_t i = 0; i < n; ++i) {
    if (!isFinite(first[i]))
      failNumerical(std::string(what) + ": non-finite value at index " +
                    std::to_string(i));
  }
}

/// Container overload: anything contiguous — Vec/std::vector (data/size)
/// or Mat (data/rows/cols).
template <class C>
void checkFinite(const C& c, const char* what) {
  if constexpr (requires { c.size(); }) {
    checkFiniteRange(c.data(), c.size(), what);
  } else {
    checkFiniteRange(c.data(), c.rows() * c.cols(), what);
  }
}

/// Throw InvalidArgument reporting both sizes if actual != expected.
inline void checkDims(std::size_t actual, std::size_t expected,
                      const char* what) {
  if (actual != expected)
    failInvalid(std::string(what) + ": dimension mismatch, got " +
                std::to_string(actual) + ", expected " +
                std::to_string(expected));
}

}  // namespace rfic::diag

// Hot-path contract macros: active only in the Diag build type (which
// defines RFIC_DIAG for every TU), compiled out everywhere else. Keep them
// out of header-inline functions — TU-dependent expansion there would be an
// ODR violation.
#ifdef RFIC_DIAG
#define RFIC_CONTRACT(cond, msg) \
  do {                           \
    if (!(cond)) ::rfic::failNumerical(msg); \
  } while (false)
#define RFIC_CHECK_FINITE(value, what) ::rfic::diag::checkFinite(value, what)
#define RFIC_CHECK_DIMS(actual, expected, what) \
  ::rfic::diag::checkDims(actual, expected, what)
#else
#define RFIC_CONTRACT(cond, msg) \
  do {                           \
  } while (false)
#define RFIC_CHECK_FINITE(value, what) \
  do {                                 \
  } while (false)
#define RFIC_CHECK_DIMS(actual, expected, what) \
  do {                                          \
  } while (false)
#endif
