#include "diag/resilience.hpp"

#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rfic::diag {

// ------------------------------------------------------------ MemAccount

namespace {
/// The innermost account installed on this thread; memCharge() targets it.
thread_local MemAccount* tlMemAccount = nullptr;
}  // namespace

MemScope::MemScope(MemAccount& account) : prev_(tlMemAccount) {
  tlMemAccount = &account;
}

MemScope::~MemScope() { tlMemAccount = prev_; }

MemAccount* MemScope::current() { return tlMemAccount; }

MemAccount* MemScope::exchange(MemAccount* account) {
  MemAccount* prev = tlMemAccount;
  tlMemAccount = account;
  return prev;
}

void memCharge(std::uint64_t bytes) {
  if (MemAccount* a = tlMemAccount) a->charge(bytes);
}

// ------------------------------------------------------------- RunBudget

bool RunBudget::exceeded() const {
  int why = tripped_.load(std::memory_order_relaxed);
  if (why == 0) {
    if (haveDeadline_ && Clock::now() >= deadline_) {
      trip(1);
    } else if (newtonLimit_ != 0 &&
               newtonUsed_.load(std::memory_order_relaxed) >= newtonLimit_) {
      trip(2);
    } else if (krylovLimit_ != 0 &&
               krylovUsed_.load(std::memory_order_relaxed) >= krylovLimit_) {
      trip(3);
    } else if (mem_.overLimit()) {
      trip(6);
    }
    why = tripped_.load(std::memory_order_relaxed);
  }
  return why != 0;
}

const char* RunBudget::reason() const {
  switch (tripped_.load(std::memory_order_relaxed)) {
    case 1: return "wall-clock";
    case 2: return "newton-iterations";
    case 3: return "krylov-iterations";
    case 4: return "injected";
    case 5: return "cancelled";
    case 6: return "memory-bytes";
    default: return "";
  }
}

bool budgetExceeded(const RunBudget* b) {
  if (FaultInjector::global().fire(FaultPoint::BudgetExpiry)) {
    if (b) b->trip(4);
    return true;
  }
  if (FaultInjector::global().fire(FaultPoint::MemSpike)) {
    if (b) b->tripMemory();
    return true;
  }
  return b != nullptr && b->exceeded();
}

// --------------------------------------------------------- FaultInjector

const char* toString(FaultPoint p) {
  switch (p) {
    case FaultPoint::NanInResidual: return "nan-in-residual";
    case FaultPoint::SingularJacobian: return "singular-jacobian";
    case FaultPoint::KrylovStall: return "krylov-stall";
    case FaultPoint::FactorRepivot: return "factor-repivot";
    case FaultPoint::BudgetExpiry: return "budget-expiry";
    case FaultPoint::MemSpike: return "mem-spike";
    case FaultPoint::kCount: break;
  }
  return "unknown";
}

FaultInjector& FaultInjector::global() {
  static FaultInjector instance;
  static const bool envParsed = [] {
    if (const char* env = std::getenv("RFIC_INJECT_FAULT")) {
      // rt: allow(rt-alloc) once-per-process env parsing inside the
      // function-local static initializer; fire() itself is atomics-only
      const std::string specs(env);
      std::size_t start = 0;
      while (start <= specs.size()) {
        const std::size_t comma = specs.find(',', start);
        const std::string one =
            specs.substr(start, comma == std::string::npos ? std::string::npos
                                                           : comma - start);
        if (!one.empty()) instance.arm(one);
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    }
    return true;
  }();
  (void)envParsed;
  return instance;
}

void FaultInjector::arm(FaultPoint p, std::uint64_t count) {
  const int i = static_cast<int>(p);
  RFIC_REQUIRE(i >= 0 && i < kPoints, "FaultInjector::arm: bad point");
  const std::uint64_t before =
      remaining_[i].exchange(count, std::memory_order_relaxed);
  if (before == 0 && count != 0)
    armedPoints_.fetch_add(1, std::memory_order_relaxed);
  else if (before != 0 && count == 0)
    armedPoints_.fetch_sub(1, std::memory_order_relaxed);
}

void FaultInjector::arm(const std::string& spec) {
  // rt: allow(rt-alloc) test-harness configuration path — arm() runs at
  // setup time, never from the solver loops that call fire()
  std::string name = spec;
  std::uint64_t count = 1;
  if (const std::size_t colon = spec.find(':'); colon != std::string::npos) {
    name = spec.substr(0, colon);
    const std::string num = spec.substr(colon + 1);  // rt: allow(rt-alloc)
                                                     // setup-time parsing
    char* end = nullptr;
    count = std::strtoull(num.c_str(), &end, 10);
    RFIC_REQUIRE(end != nullptr && *end == '\0' && !num.empty(),
                 "FaultInjector: malformed count in spec '" + spec + "'");
  }
  for (int i = 0; i < kPoints; ++i) {
    const auto p = static_cast<FaultPoint>(i);
    if (name == toString(p)) {
      arm(p, count);
      return;
    }
  }
  failInvalid("FaultInjector: unknown fault point '" + name +
              "' (expected nan-in-residual, singular-jacobian, krylov-stall, "
              "factor-repivot, budget-expiry, or mem-spike)");
}

void FaultInjector::reset() {
  for (int i = 0; i < kPoints; ++i) {
    if (remaining_[i].exchange(0, std::memory_order_relaxed) != 0)
      armedPoints_.fetch_sub(1, std::memory_order_relaxed);
    fired_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::fire(FaultPoint p) {
  if (armedPoints_.load(std::memory_order_relaxed) == 0) return false;
  const int i = static_cast<int>(p);
  std::uint64_t cur = remaining_[i].load(std::memory_order_relaxed);
  while (cur != 0) {
    if (remaining_[i].compare_exchange_weak(cur, cur - 1,
                                            std::memory_order_relaxed)) {
      if (cur == 1) armedPoints_.fetch_sub(1, std::memory_order_relaxed);
      fired_[i].fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }
  return false;
}

// ----------------------------------------------------------- Checkpoints

namespace {

// On-disk layout: magic, version, kind, then kind-specific payload. All
// floating-point state is written as raw IEEE-754 bytes so a resumed run
// starts from the bit-exact values of the interrupted one.
constexpr char kMagic[8] = {'R', 'F', 'I', 'C', 'C', 'K', 'P', 'T'};
constexpr std::uint32_t kVersion = 1;
constexpr std::uint32_t kKindTransient = 1;
constexpr std::uint32_t kKindJitter = 2;

class Writer {
 public:
  explicit Writer(std::FILE* f) : f_(f) {}
  template <class T>
  void pod(const T& v) {
    if (ok_ && std::fwrite(&v, sizeof(T), 1, f_) != 1) ok_ = false;
  }
  void doubles(const Real* p, std::size_t n) {
    if (ok_ && n != 0 && std::fwrite(p, sizeof(Real), n, f_) != n)
      ok_ = false;
  }
  void bytes(const unsigned char* p, std::size_t n) {
    if (ok_ && n != 0 && std::fwrite(p, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

class Reader {
 public:
  explicit Reader(std::FILE* f) : f_(f) {}
  template <class T>
  void pod(T& v) {
    if (ok_ && std::fread(&v, sizeof(T), 1, f_) != 1) ok_ = false;
  }
  void doubles(Real* p, std::size_t n) {
    if (ok_ && n != 0 && std::fread(p, sizeof(Real), n, f_) != n) ok_ = false;
  }
  void bytes(unsigned char* p, std::size_t n) {
    if (ok_ && n != 0 && std::fread(p, 1, n, f_) != n) ok_ = false;
  }
  bool ok() const { return ok_; }

 private:
  std::FILE* f_;
  bool ok_ = true;
};

// Sanity cap on deserialized vector lengths: rejects corrupt headers
// before they turn into multi-GB allocations.
constexpr std::uint64_t kMaxLen = std::uint64_t(1) << 32;

bool openAndCheckHeader(std::FILE* f, std::uint32_t wantKind) {
  char magic[8];
  std::uint32_t version = 0, kind = 0;
  if (std::fread(magic, 1, 8, f) != 8) return false;
  if (std::memcmp(magic, kMagic, 8) != 0) return false;
  Reader r(f);
  r.pod(version);
  r.pod(kind);
  return r.ok() && version == kVersion && kind == wantKind;
}

template <class WritePayload>
bool atomicWrite(const std::string& path, std::uint32_t kind,
                 WritePayload&& payload) {
  const std::string tmp = path + ".tmp";
  std::FILE* f = std::fopen(tmp.c_str(), "wb");
  if (!f) return false;
  Writer w(f);
  w.bytes(reinterpret_cast<const unsigned char*>(kMagic), 8);
  w.pod(kVersion);
  w.pod(kind);
  payload(w);
  const bool flushed = std::fflush(f) == 0;
  const bool closed = std::fclose(f) == 0;
  if (!w.ok() || !flushed || !closed) {
    std::remove(tmp.c_str());
    return false;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return false;
  }
  return true;
}

}  // namespace

bool saveCheckpoint(const std::string& path, const TransientCheckpoint& ck) {
  return atomicWrite(path, kKindTransient, [&](Writer& w) {
    w.pod(ck.steps);
    w.pod(ck.newtonIterations);
    w.pod(ck.retries);
    w.pod(ck.t);
    w.pod(ck.h);
    w.pod(ck.hPrev);
    w.pod(static_cast<std::uint8_t>(ck.havePrev ? 1 : 0));
    w.pod(static_cast<std::uint64_t>(ck.x.size()));
    w.doubles(ck.x.data(), ck.x.size());
    w.pod(static_cast<std::uint64_t>(ck.xPrev.size()));
    w.doubles(ck.xPrev.data(), ck.xPrev.size());
    w.pod(static_cast<std::uint64_t>(ck.dynamicMask.size()));
    w.bytes(ck.dynamicMask.data(), ck.dynamicMask.size());
  });
}

bool loadCheckpoint(const std::string& path, TransientCheckpoint& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  TransientCheckpoint ck;
  bool ok = openAndCheckHeader(f, kKindTransient);
  if (ok) {
    Reader r(f);
    std::uint8_t havePrev = 0;
    std::uint64_t nx = 0, nxp = 0, nm = 0;
    r.pod(ck.steps);
    r.pod(ck.newtonIterations);
    r.pod(ck.retries);
    r.pod(ck.t);
    r.pod(ck.h);
    r.pod(ck.hPrev);
    r.pod(havePrev);
    r.pod(nx);
    ok = r.ok() && nx < kMaxLen;
    if (ok) {
      ck.x.resize(nx);
      r.doubles(ck.x.data(), nx);
      r.pod(nxp);
      ok = r.ok() && nxp < kMaxLen;
    }
    if (ok) {
      ck.xPrev.resize(nxp);
      r.doubles(ck.xPrev.data(), nxp);
      r.pod(nm);
      ok = r.ok() && nm < kMaxLen;
    }
    if (ok) {
      ck.dynamicMask.resize(nm);
      r.bytes(ck.dynamicMask.data(), nm);
      ck.havePrev = havePrev != 0;
      ok = r.ok();
    }
  }
  std::fclose(f);
  if (ok) out = std::move(ck);
  return ok;
}

bool saveCheckpoint(const std::string& path, const JitterCheckpoint& ck) {
  return atomicWrite(path, kKindJitter, [&](Writer& w) {
    w.pod(ck.totalPaths);
    w.pod(static_cast<std::uint64_t>(ck.pathCrossings.size()));
    for (const auto& cr : ck.pathCrossings) {
      w.pod(static_cast<std::uint64_t>(cr.size()));
      w.doubles(cr.data(), cr.size());
    }
  });
}

bool loadCheckpoint(const std::string& path, JitterCheckpoint& out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (!f) return false;
  JitterCheckpoint ck;
  bool ok = openAndCheckHeader(f, kKindJitter);
  if (ok) {
    Reader r(f);
    std::uint64_t npaths = 0;
    r.pod(ck.totalPaths);
    r.pod(npaths);
    ok = r.ok() && npaths < kMaxLen;
    if (ok) {
      ck.pathCrossings.resize(npaths);
      for (auto& cr : ck.pathCrossings) {
        std::uint64_t n = 0;
        r.pod(n);
        if (!r.ok() || n >= kMaxLen) {
          ok = false;
          break;
        }
        cr.resize(n);
        r.doubles(cr.data(), n);
      }
      ok = ok && r.ok();
    }
  }
  std::fclose(f);
  if (ok) out = std::move(ck);
  return ok;
}

}  // namespace rfic::diag
