// Structured convergence reporting shared by every iterative solver.
//
// The project rule (enforced by tools/numerics_lint.py) is that no
// iterative process may silently return: GMRES, BiCGSTAB, CG, the shooting
// and HB Newton loops, and DC continuation all classify *why* they stopped,
// not just whether the residual target was met. Callers that previously
// read only the `converged` bool keep working; callers that need to
// distinguish "hit the iteration cap while still contracting" from "the
// recurrence broke down on a singular system" now can.
#pragma once

namespace rfic::diag {

/// Why an iterative solver stopped.
enum class SolverStatus {
  NotRun = 0,     ///< solver was never entered (default-constructed result)
  Converged,      ///< residual target met
  MaxIterations,  ///< iteration cap hit before the target
  Breakdown,      ///< recurrence broke down (e.g. rho ≈ 0 in BiCGSTAB);
                  ///< typical of singular or near-singular systems
  Stagnated,      ///< residual stopped improving (Krylov space exhausted)
  Diverged,       ///< residual became non-finite (NaN/Inf)
  Repivoted,      ///< pattern-reusing refactorization hit excessive pivot
                  ///< growth and fell back to a fresh full factorization
  BudgetExceeded, ///< cooperative RunBudget (wall-clock deadline or global
                  ///< iteration cap) tripped; partial results returned
  StepLimit,      ///< step control collapsed (dt cut below dtMin with the
                  ///< Newton solve still failing)
  BudgetExceededMemory, ///< the RunBudget's byte budget tripped (a workspace
                        ///< grow site crossed maxBytes); partial results
                        ///< returned, job exit code 6. Solvers report plain
                        ///< BudgetExceeded — the engine refines it to this
                        ///< via RunBudget::memoryExceeded().
};

/// Stable human-readable name for logs and error messages.
inline const char* toString(SolverStatus s) {
  switch (s) {
    case SolverStatus::NotRun: return "not-run";
    case SolverStatus::Converged: return "converged";
    case SolverStatus::MaxIterations: return "max-iterations";
    case SolverStatus::Breakdown: return "breakdown";
    case SolverStatus::Stagnated: return "stagnated";
    case SolverStatus::Diverged: return "diverged";
    case SolverStatus::Repivoted: return "repivoted";
    case SolverStatus::BudgetExceeded: return "budget-exceeded";
    case SolverStatus::StepLimit: return "step-limit";
    case SolverStatus::BudgetExceededMemory:
      return "budget-exceeded-memory";
  }
  return "unknown";
}

}  // namespace rfic::diag
