// Compile-time concurrency contracts: Clang Thread Safety Analysis
// capability macros, an annotated mutex family, and the RFIC_REALTIME
// marker consumed by tools/realtime_lint.py.
//
// PRs 2-5 made the simulator heavily concurrent (shared perf::ThreadPool,
// process-wide fft::PlanCache, parallel IES3 fill/solve) and promised
// zero steady-state allocation in the hot loops. Until now those
// invariants were enforced only at runtime — workspaceGrowth() counters
// and TSan — which observe only the inputs a test happens to exercise.
// This header makes them compile-time checkable:
//
//  * Capability macros (RFIC_GUARDED_BY, RFIC_REQUIRES, ...) wrap Clang's
//    -Wthread-safety attributes. Under GCC (which has no such analysis)
//    they expand to nothing, so the annotations cost nothing to carry and
//    gcc-only containers build unchanged. The CI static-analysis job
//    compiles with clang and -Wthread-safety -Wthread-safety-beta as
//    errors, so an unguarded access to annotated state fails the build.
//
//  * diag::Mutex / diag::LockGuard / diag::UniqueLock are drop-in
//    std::mutex wrappers carrying the capability attributes — the
//    analysis only understands annotated lock types. UniqueLock exposes
//    its std::unique_lock for condition_variable waits.
//
//  * diag::ExclusiveContext is the runtime tier for shared state that is
//    protected by contract rather than by a lock (the HB engine's mutable
//    workspace: "one engine instance must not run concurrent solve()
//    calls"). Entering an already-entered context fails loudly in every
//    build instead of corrupting the workspace silently.
//
//  * RFIC_REALTIME marks a function as a real-time/allocation-free hot
//    path. tools/realtime_lint.py walks the call graph from every marked
//    function and rejects reachable allocation, lock acquisition, throw
//    statements, and I/O (suppressions need an inline justification:
//    `// rt: allow(<rule>) <why>`). Under clang the marker also leaves an
//    `annotate` attribute in the AST for future libclang-based tooling.
//
// Conventions (DESIGN.md §9): every std::mutex in the library is a
// diag::Mutex; every field it protects carries RFIC_GUARDED_BY; private
// helpers called under the lock carry RFIC_REQUIRES instead of
// re-locking; public entry points that take the lock carry RFIC_EXCLUDES
// so self-deadlock is a compile error.
#pragma once

#include <atomic>
#include <mutex>

#include "common.hpp"

// ---------------------------------------------------------------- macros

#if defined(__clang__)
#define RFIC_THREAD_ANNOTATION(x) __attribute__((x))
#else
#define RFIC_THREAD_ANNOTATION(x)  // no-op: GCC has no thread-safety analysis
#endif

/// Declares a type to be a lockable capability ("mutex").
#define RFIC_CAPABILITY(x) RFIC_THREAD_ANNOTATION(capability(x))
/// Declares an RAII type that acquires in its ctor / releases in its dtor.
#define RFIC_SCOPED_CAPABILITY RFIC_THREAD_ANNOTATION(scoped_lockable)
/// Data member readable/writable only while holding the given capability.
#define RFIC_GUARDED_BY(x) RFIC_THREAD_ANNOTATION(guarded_by(x))
/// Pointer member whose pointee is protected by the given capability.
#define RFIC_PT_GUARDED_BY(x) RFIC_THREAD_ANNOTATION(pt_guarded_by(x))
/// Function requires the capability held on entry (and does not release it).
#define RFIC_REQUIRES(...) \
  RFIC_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
/// Function acquires the capability (held on exit).
#define RFIC_ACQUIRE(...) RFIC_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
/// Function releases the capability (not held on exit).
#define RFIC_RELEASE(...) RFIC_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
/// Function acquires the capability iff it returns the given value.
#define RFIC_TRY_ACQUIRE(...) \
  RFIC_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))
/// Function must NOT be called with the capability held (deadlock guard).
#define RFIC_EXCLUDES(...) RFIC_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))
/// Lock-ordering declarations for multi-mutex code.
#define RFIC_ACQUIRED_BEFORE(...) \
  RFIC_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define RFIC_ACQUIRED_AFTER(...) \
  RFIC_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))
/// Accessor returning a reference to the given capability.
#define RFIC_RETURN_CAPABILITY(x) RFIC_THREAD_ANNOTATION(lock_returned(x))
/// Escape hatch; every use needs a comment saying why the analysis is wrong.
#define RFIC_NO_THREAD_SAFETY_ANALYSIS \
  RFIC_THREAD_ANNOTATION(no_thread_safety_analysis)

/// Marks a real-time hot path: no allocation, no locks, no throw, no I/O
/// reachable from here (tools/realtime_lint.py enforces it as a ctest/CI
/// gate; violations need `// rt: allow(<rule>) <justification>`).
#if defined(__clang__)
#define RFIC_REALTIME __attribute__((annotate("rfic::realtime")))
#else
#define RFIC_REALTIME
#endif

namespace rfic::diag {

// ----------------------------------------------------- annotated mutexes

/// std::mutex with the capability annotation the analysis needs. Same
/// cost, same semantics; `native()` exists only for condition_variable
/// plumbing through UniqueLock.
class RFIC_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() RFIC_ACQUIRE() { mu_.lock(); }
  void unlock() RFIC_RELEASE() { mu_.unlock(); }
  bool try_lock() RFIC_TRY_ACQUIRE(true) { return mu_.try_lock(); }

  std::mutex& native() { return mu_; }

 private:
  std::mutex mu_;
};

/// Scoped lock of a diag::Mutex (std::lock_guard shape).
class RFIC_SCOPED_CAPABILITY LockGuard {
 public:
  explicit LockGuard(Mutex& mu) RFIC_ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~LockGuard() RFIC_RELEASE() { mu_.unlock(); }

  LockGuard(const LockGuard&) = delete;
  LockGuard& operator=(const LockGuard&) = delete;

 private:
  Mutex& mu_;
};

/// Scoped lock exposing its std::unique_lock for condition_variable::wait.
/// The analysis treats the capability as held across a wait — which is the
/// correct model: the predicate and all guarded accesses around the wait
/// run under the re-acquired lock.
class RFIC_SCOPED_CAPABILITY UniqueLock {
 public:
  explicit UniqueLock(Mutex& mu) RFIC_ACQUIRE(mu) : lock_(mu.native()) {}
  ~UniqueLock() RFIC_RELEASE() {}  // lock_'s destructor performs the unlock

  UniqueLock(const UniqueLock&) = delete;
  UniqueLock& operator=(const UniqueLock&) = delete;

  std::unique_lock<std::mutex>& native() { return lock_; }

 private:
  std::unique_lock<std::mutex> lock_;
};

// -------------------------------------------------- runtime exclusivity

/// Exclusivity contract for state shared by convention rather than by a
/// lock: entering a context that is already entered is a programming
/// error (two threads inside one HB engine's solve(), nested solve()
/// reentry) and fails loudly instead of corrupting the workspace. One
/// relaxed CAS per entry — cheap enough to keep armed in Release.
class ExclusiveContext {
 public:
  class Scope {
   public:
    explicit Scope(ExclusiveContext& ctx, const char* what) : ctx_(ctx) {
      bool expected = false;
      if (!ctx_.busy_.compare_exchange_strong(expected, true,
                                              std::memory_order_acquire))
        failInvalid(std::string(what) +
                    ": concurrent entry into a single-caller context — one "
                    "engine instance must not run overlapping solves");
    }
    ~Scope() { ctx_.busy_.store(false, std::memory_order_release); }

    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    ExclusiveContext& ctx_;
  };

 private:
  std::atomic<bool> busy_{false};
};

}  // namespace rfic::diag
