// Solver resilience layer: run budgets, fault injection, and checkpoints.
//
// Every analysis engine in this library is an iterative process that can
// fail — Newton divergence, Krylov stagnation, a singular Jacobian, a NaN
// escaping a device model — and the production posture (ROADMAP north star)
// is that such failures end in a structured diag::SolverStatus, never a
// crash, a hang, or a silently wrong answer. Three cooperative mechanisms
// back that posture:
//
//  * RunBudget — a shared wall-clock deadline plus global Newton/Krylov
//    iteration caps. Engines charge iterations against the budget and poll
//    `budgetExceeded(...)` at step granularity; when the budget trips they
//    return SolverStatus::BudgetExceeded with whatever partial result they
//    hold instead of running open-loop. One RunBudget may be threaded
//    through a whole analysis chain (DC → transient → HB), and the counters
//    are atomics so parallel paths (jitter Monte-Carlo) can share it.
//
//  * FaultInjector — named injection points compiled into the solvers
//    (nan-in-residual, singular-jacobian, krylov-stall, factor-repivot,
//    budget-expiry), armed via RFIC_INJECT_FAULT or `rficsim
//    --inject-fault`. When disarmed the per-site cost is one relaxed atomic
//    load. The fault-injection test matrix arms each point against each
//    engine and asserts structured recovery or clean failure.
//
//  * Checkpoints — transient and jitter-MC runs can serialize their full
//    integrator state to a file (atomically: tmp + rename) on an interval
//    or when the budget expires, and resume bit-identically: the
//    checkpoint stores every input of the stepping recurrence (state,
//    history, step sizes, the LTE dynamic mask), so the resumed arithmetic
//    is the same sequence the uninterrupted run would have performed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "diag/convergence.hpp"

namespace rfic::diag {

// ------------------------------------------------------------- RunBudget

/// Cooperative wall-clock / iteration budget shared across solvers.
/// Engines charge work and poll exceeded(); once tripped it stays tripped
/// (sticky), so a deep inner loop and its caller agree on the verdict.
class RunBudget {
 public:
  RunBudget() = default;

  /// Arm a wall-clock deadline `seconds` from now (<= 0 disarms).
  void setWallLimit(Real seconds) {
    if (seconds > 0) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<Real>(seconds));
      haveDeadline_ = true;
    } else {
      haveDeadline_ = false;
    }
  }
  /// Cap the total Newton iterations charged (0 disarms).
  void setNewtonLimit(std::uint64_t maxIterations) {
    newtonLimit_ = maxIterations;
  }
  /// Cap the total Krylov iterations charged (0 disarms).
  void setKrylovLimit(std::uint64_t maxIterations) {
    krylovLimit_ = maxIterations;
  }

  void chargeNewton(std::uint64_t n = 1) {
    newtonUsed_.fetch_add(n, std::memory_order_relaxed);
  }
  void chargeKrylov(std::uint64_t n = 1) {
    krylovUsed_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t newtonUsed() const {
    return newtonUsed_.load(std::memory_order_relaxed);
  }
  std::uint64_t krylovUsed() const {
    return krylovUsed_.load(std::memory_order_relaxed);
  }

  /// True once any limit has been hit; sticky. Safe to call concurrently.
  bool exceeded() const;

  /// Cooperative cancellation: trips the budget immediately (sticky), so
  /// every engine polling budgetExceeded() unwinds with partial results at
  /// its next step boundary. Safe to call from any thread — this is how
  /// the engine::Scheduler cancels a running job.
  void requestCancel() const { trip(5); }

  /// True when the trip came from requestCancel() rather than a limit.
  bool cancelled() const {
    return tripped_.load(std::memory_order_relaxed) == 5;
  }

  /// Which limit tripped: "wall-clock", "newton-iterations",
  /// "krylov-iterations", "injected", "cancelled", or "" while within
  /// budget.
  const char* reason() const;

 private:
  using Clock = std::chrono::steady_clock;

  friend bool budgetExceeded(const RunBudget* b);
  void trip(int why) const {
    int expected = 0;
    tripped_.compare_exchange_strong(expected, why,
                                     std::memory_order_relaxed);
  }

  bool haveDeadline_ = false;
  Clock::time_point deadline_{};
  std::uint64_t newtonLimit_ = 0;
  std::uint64_t krylovLimit_ = 0;
  std::atomic<std::uint64_t> newtonUsed_{0};
  std::atomic<std::uint64_t> krylovUsed_{0};
  mutable std::atomic<int> tripped_{0};  // 0 ok, 1 wall, 2 newton, 3 krylov,
                                         // 4 injected (budget-expiry fault),
                                         // 5 cancelled (requestCancel)
};

/// The one budget poll every engine uses: true when the (optional) budget
/// has tripped, or when the `budget-expiry` fault point fires. Engines must
/// treat `true` as "stop now and return SolverStatus::BudgetExceeded with
/// partial results".
bool budgetExceeded(const RunBudget* b);

// --------------------------------------------------------- FaultInjector

/// Injection points compiled into the solvers. Keep toString()/parse in
/// resilience.cpp in sync when adding a point.
enum class FaultPoint : int {
  NanInResidual = 0,  ///< poison one assembled residual with a NaN
  SingularJacobian,   ///< make one Jacobian factorization fail as singular
  KrylovStall,        ///< force one GMRES/BiCGSTAB call to report Stagnated
  FactorRepivot,      ///< force one numeric refactorization down the
                      ///< repivot (fresh-factorization) fallback
  BudgetExpiry,       ///< make one budgetExceeded() poll return true
  kCount,
};

/// Stable CLI/env name of a fault point ("nan-in-residual", ...).
const char* toString(FaultPoint p);

/// Process-global fault injector. Disarmed it costs one relaxed atomic
/// load per site; armed, each point carries a countdown of injections.
class FaultInjector {
 public:
  /// The instance every solver consults. First access parses
  /// RFIC_INJECT_FAULT ("point[:count][,point[:count]...]") if set.
  static FaultInjector& global();

  /// Arm `p` to fire `count` times (count == 0 disarms the point).
  void arm(FaultPoint p, std::uint64_t count = 1);
  /// Arm from a CLI/env spec "name" or "name:count". Throws
  /// InvalidArgument on an unknown name or malformed count.
  void arm(const std::string& spec);
  /// Disarm every point and zero the fired counters.
  void reset();

  /// Consume one charge of `p`: true exactly `count` times after arm().
  bool fire(FaultPoint p);
  /// How many times `p` actually fired since the last reset().
  std::uint64_t firedCount(FaultPoint p) const {
    return fired_[static_cast<int>(p)].load(std::memory_order_relaxed);
  }
  bool anyArmed() const {
    return armedPoints_.load(std::memory_order_relaxed) != 0;
  }

 private:
  static constexpr int kPoints = static_cast<int>(FaultPoint::kCount);
  std::atomic<std::uint64_t> remaining_[kPoints]{};
  std::atomic<std::uint64_t> fired_[kPoints]{};
  std::atomic<int> armedPoints_{0};  ///< # points with charges remaining
};

// ----------------------------------------------------------- Checkpoints

/// Complete transient integrator state: everything the stepping recurrence
/// reads, so a resumed run replays bit-identical arithmetic.
struct TransientCheckpoint {
  std::uint64_t steps = 0;
  std::uint64_t newtonIterations = 0;
  std::uint64_t retries = 0;
  Real t = 0;      ///< current time
  Real h = 0;      ///< next step size to attempt
  Real hPrev = 0;  ///< last accepted step (Gear-2 / LTE history)
  bool havePrev = false;
  std::vector<Real> x;      ///< state at t
  std::vector<Real> xPrev;  ///< state one accepted step back (if havePrev)
  /// LTE dynamic-unknown mask captured at the original start point; resume
  /// reuses it instead of re-deriving (the re-derivation at the resume
  /// state could differ and break bit-identity of step control).
  std::vector<unsigned char> dynamicMask;
};

/// Jitter-MC ensemble progress: crossing times of every completed path.
struct JitterCheckpoint {
  std::uint64_t totalPaths = 0;
  /// pathCrossings[p] empty ⇔ path p not finished yet.
  std::vector<std::vector<Real>> pathCrossings;
};

/// Serialize to `path` atomically (write `path.tmp`, then rename). Returns
/// false on I/O failure — callers log and continue; a checkpoint failure
/// must never kill the run it is protecting.
bool saveCheckpoint(const std::string& path, const TransientCheckpoint& ck);
bool saveCheckpoint(const std::string& path, const JitterCheckpoint& ck);

/// Load from `path`. Returns false (and leaves `out` untouched) if the
/// file is missing, truncated, or not a checkpoint of the expected kind.
bool loadCheckpoint(const std::string& path, TransientCheckpoint& out);
bool loadCheckpoint(const std::string& path, JitterCheckpoint& out);

}  // namespace rfic::diag
