// Solver resilience layer: run budgets, fault injection, and checkpoints.
//
// Every analysis engine in this library is an iterative process that can
// fail — Newton divergence, Krylov stagnation, a singular Jacobian, a NaN
// escaping a device model — and the production posture (ROADMAP north star)
// is that such failures end in a structured diag::SolverStatus, never a
// crash, a hang, or a silently wrong answer. Three cooperative mechanisms
// back that posture:
//
//  * RunBudget — a shared wall-clock deadline plus global Newton/Krylov
//    iteration caps. Engines charge iterations against the budget and poll
//    `budgetExceeded(...)` at step granularity; when the budget trips they
//    return SolverStatus::BudgetExceeded with whatever partial result they
//    hold instead of running open-loop. One RunBudget may be threaded
//    through a whole analysis chain (DC → transient → HB), and the counters
//    are atomics so parallel paths (jitter Monte-Carlo) can share it.
//
//  * FaultInjector — named injection points compiled into the solvers
//    (nan-in-residual, singular-jacobian, krylov-stall, factor-repivot,
//    budget-expiry, mem-spike), armed via RFIC_INJECT_FAULT or `rficsim
//    --inject-fault`. When disarmed the per-site cost is one relaxed atomic
//    load. The fault-injection test matrix arms each point against each
//    engine and asserts structured recovery or clean failure.
//
//  * Checkpoints — transient and jitter-MC runs can serialize their full
//    integrator state to a file (atomically: tmp + rename) on an interval
//    or when the budget expires, and resume bit-identically: the
//    checkpoint stores every input of the stepping recurrence (state,
//    history, step sizes, the LTE dynamic mask), so the resumed arithmetic
//    is the same sequence the uninterrupted run would have performed.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "diag/convergence.hpp"

namespace rfic::diag {

// ------------------------------------------------------------ MemAccount

/// Counting allocator hook for per-job memory budgets. The grow-once
/// workspaces (MnaWorkspace pattern growth, HBWorkspace::need, IES³
/// acquireWorkspace pool misses) charge the bytes they allocate against
/// the account installed on the calling thread (see MemScope / memCharge);
/// the account tracks the running total and a CAS-max peak, and once the
/// total crosses the armed limit every subsequent RunBudget::exceeded()
/// poll trips with code 6 ("memory-bytes") so the job unwinds
/// cooperatively through the same SolverStatus::BudgetExceeded path as a
/// wall-clock expiry — no allocation is ever failed mid-flight, no thread
/// is killed. Charges are relaxed atomics: safe from ThreadPool workers.
///
/// The accounting is deliberately charge-only (no release pairing): an
/// account lives exactly as long as its job, and the contract reported to
/// clients is the *peak*, which release-tracking would not change.
class MemAccount {
 public:
  MemAccount() = default;
  MemAccount(const MemAccount&) = delete;
  MemAccount& operator=(const MemAccount&) = delete;

  /// Arm a byte limit (0 disarms). Not thread-safe against concurrent
  /// charge() — arm before the job starts, like the other budget limits.
  void setLimit(std::uint64_t maxBytes) { limit_ = maxBytes; }
  std::uint64_t limit() const { return limit_; }

  /// Charge `bytes` of workspace growth; updates the peak.
  void charge(std::uint64_t bytes) {
    const std::uint64_t now =
        current_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
    std::uint64_t p = peak_.load(std::memory_order_relaxed);
    while (now > p &&
           !peak_.compare_exchange_weak(p, now, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t currentBytes() const {
    return current_.load(std::memory_order_relaxed);
  }
  std::uint64_t peakBytes() const {
    return peak_.load(std::memory_order_relaxed);
  }
  /// True when an armed limit has been crossed.
  bool overLimit() const {
    return limit_ != 0 &&
           current_.load(std::memory_order_relaxed) > limit_;
  }

 private:
  std::uint64_t limit_ = 0;
  std::atomic<std::uint64_t> current_{0};
  std::atomic<std::uint64_t> peak_{0};
};

/// RAII installer of a thread-local "current memory account". Mirrors
/// perf::CounterScope: the engine installs the job's account on the worker
/// thread, ThreadPool batches propagate it into pool workers via
/// exchange(), and memCharge() below charges the innermost installation.
class MemScope {
 public:
  explicit MemScope(MemAccount& account);
  ~MemScope();
  MemScope(const MemScope&) = delete;
  MemScope& operator=(const MemScope&) = delete;

  /// The account installed on this thread (nullptr when none).
  static MemAccount* current();
  /// Replace this thread's account, returning the previous one. Used by
  /// ThreadPool workers to adopt the dispatching thread's account for the
  /// duration of a batch.
  static MemAccount* exchange(MemAccount* account);

 private:
  MemAccount* prev_;
};

/// Charge `bytes` against the calling thread's installed MemAccount; no-op
/// when none is installed (standalone library use, tests without budgets).
/// Cheap enough for grow sites inside RFIC_REALTIME-audited paths: one
/// thread-local read plus two relaxed atomic ops.
void memCharge(std::uint64_t bytes);

// ------------------------------------------------------------- RunBudget

/// Cooperative wall-clock / iteration budget shared across solvers.
/// Engines charge work and poll exceeded(); once tripped it stays tripped
/// (sticky), so a deep inner loop and its caller agree on the verdict.
class RunBudget {
 public:
  RunBudget() = default;

  /// Arm a wall-clock deadline `seconds` from now (<= 0 disarms).
  void setWallLimit(Real seconds) {
    if (seconds > 0) {
      deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                     std::chrono::duration<Real>(seconds));
      haveDeadline_ = true;
    } else {
      haveDeadline_ = false;
    }
  }
  /// Cap the total Newton iterations charged (0 disarms).
  void setNewtonLimit(std::uint64_t maxIterations) {
    newtonLimit_ = maxIterations;
  }
  /// Cap the total Krylov iterations charged (0 disarms).
  void setKrylovLimit(std::uint64_t maxIterations) {
    krylovLimit_ = maxIterations;
  }
  /// Cap the workspace bytes charged via the attached MemAccount
  /// (0 disarms). Crossing the cap trips the budget with code 6 at the
  /// next exceeded() poll — allocation itself never fails.
  void setMemoryLimit(std::uint64_t maxBytes) { mem_.setLimit(maxBytes); }

  /// The budget's memory account; install it with MemScope on the thread
  /// running the job so workspace grow sites charge it.
  MemAccount& memAccount() { return mem_; }
  const MemAccount& memAccount() const { return mem_; }

  void chargeNewton(std::uint64_t n = 1) {
    newtonUsed_.fetch_add(n, std::memory_order_relaxed);
  }
  void chargeKrylov(std::uint64_t n = 1) {
    krylovUsed_.fetch_add(n, std::memory_order_relaxed);
  }

  std::uint64_t newtonUsed() const {
    return newtonUsed_.load(std::memory_order_relaxed);
  }
  std::uint64_t krylovUsed() const {
    return krylovUsed_.load(std::memory_order_relaxed);
  }

  /// True once any limit has been hit; sticky. Safe to call concurrently.
  bool exceeded() const;

  /// Cooperative cancellation: trips the budget immediately (sticky), so
  /// every engine polling budgetExceeded() unwinds with partial results at
  /// its next step boundary. Safe to call from any thread — this is how
  /// the engine::Scheduler cancels a running job.
  void requestCancel() const { trip(5); }

  /// True when the trip came from requestCancel() rather than a limit.
  bool cancelled() const {
    return tripped_.load(std::memory_order_relaxed) == 5;
  }

  /// True when the trip came from the memory budget (exit code 6).
  bool memoryExceeded() const {
    return tripped_.load(std::memory_order_relaxed) == 6;
  }

  /// Trip the memory limit directly (sticky). Used by the `mem-spike`
  /// fault point and by MemAccount once its armed limit is crossed.
  void tripMemory() const { trip(6); }

  /// Which limit tripped: "wall-clock", "newton-iterations",
  /// "krylov-iterations", "injected", "cancelled", "memory-bytes", or ""
  /// while within budget.
  const char* reason() const;

 private:
  using Clock = std::chrono::steady_clock;

  friend bool budgetExceeded(const RunBudget* b);
  void trip(int why) const {
    int expected = 0;
    tripped_.compare_exchange_strong(expected, why,
                                     std::memory_order_relaxed);
  }

  bool haveDeadline_ = false;
  Clock::time_point deadline_{};
  std::uint64_t newtonLimit_ = 0;
  std::uint64_t krylovLimit_ = 0;
  std::atomic<std::uint64_t> newtonUsed_{0};
  std::atomic<std::uint64_t> krylovUsed_{0};
  MemAccount mem_;
  mutable std::atomic<int> tripped_{0};  // 0 ok, 1 wall, 2 newton, 3 krylov,
                                         // 4 injected (budget-expiry fault),
                                         // 5 cancelled (requestCancel),
                                         // 6 memory-bytes (MemAccount)
};

/// The one budget poll every engine uses: true when the (optional) budget
/// has tripped, or when the `budget-expiry` fault point fires. Engines must
/// treat `true` as "stop now and return SolverStatus::BudgetExceeded with
/// partial results".
bool budgetExceeded(const RunBudget* b);

// --------------------------------------------------------- FaultInjector

/// Injection points compiled into the solvers. Keep toString()/parse in
/// resilience.cpp in sync when adding a point.
enum class FaultPoint : int {
  NanInResidual = 0,  ///< poison one assembled residual with a NaN
  SingularJacobian,   ///< make one Jacobian factorization fail as singular
  KrylovStall,        ///< force one GMRES/BiCGSTAB call to report Stagnated
  FactorRepivot,      ///< force one numeric refactorization down the
                      ///< repivot (fresh-factorization) fallback
  BudgetExpiry,       ///< make one budgetExceeded() poll return true
  MemSpike,           ///< make one budgetExceeded() poll trip the memory
                      ///< budget (exit 6), as if a grow site blew the cap
  kCount,
};

/// Stable CLI/env name of a fault point ("nan-in-residual", ...).
const char* toString(FaultPoint p);

/// Process-global fault injector. Disarmed it costs one relaxed atomic
/// load per site; armed, each point carries a countdown of injections.
class FaultInjector {
 public:
  /// The instance every solver consults. First access parses
  /// RFIC_INJECT_FAULT ("point[:count][,point[:count]...]") if set.
  static FaultInjector& global();

  /// Arm `p` to fire `count` times (count == 0 disarms the point).
  void arm(FaultPoint p, std::uint64_t count = 1);
  /// Arm from a CLI/env spec "name" or "name:count". Throws
  /// InvalidArgument on an unknown name or malformed count.
  void arm(const std::string& spec);
  /// Disarm every point and zero the fired counters.
  void reset();

  /// Consume one charge of `p`: true exactly `count` times after arm().
  bool fire(FaultPoint p);
  /// How many times `p` actually fired since the last reset().
  std::uint64_t firedCount(FaultPoint p) const {
    return fired_[static_cast<int>(p)].load(std::memory_order_relaxed);
  }
  bool anyArmed() const {
    return armedPoints_.load(std::memory_order_relaxed) != 0;
  }

 private:
  static constexpr int kPoints = static_cast<int>(FaultPoint::kCount);
  std::atomic<std::uint64_t> remaining_[kPoints]{};
  std::atomic<std::uint64_t> fired_[kPoints]{};
  std::atomic<int> armedPoints_{0};  ///< # points with charges remaining
};

// ----------------------------------------------------------- Checkpoints

/// Complete transient integrator state: everything the stepping recurrence
/// reads, so a resumed run replays bit-identical arithmetic.
struct TransientCheckpoint {
  std::uint64_t steps = 0;
  std::uint64_t newtonIterations = 0;
  std::uint64_t retries = 0;
  Real t = 0;      ///< current time
  Real h = 0;      ///< next step size to attempt
  Real hPrev = 0;  ///< last accepted step (Gear-2 / LTE history)
  bool havePrev = false;
  std::vector<Real> x;      ///< state at t
  std::vector<Real> xPrev;  ///< state one accepted step back (if havePrev)
  /// LTE dynamic-unknown mask captured at the original start point; resume
  /// reuses it instead of re-deriving (the re-derivation at the resume
  /// state could differ and break bit-identity of step control).
  std::vector<unsigned char> dynamicMask;
};

/// Jitter-MC ensemble progress: crossing times of every completed path.
struct JitterCheckpoint {
  std::uint64_t totalPaths = 0;
  /// pathCrossings[p] empty ⇔ path p not finished yet.
  std::vector<std::vector<Real>> pathCrossings;
};

/// Serialize to `path` atomically (write `path.tmp`, then rename). Returns
/// false on I/O failure — callers log and continue; a checkpoint failure
/// must never kill the run it is protecting.
bool saveCheckpoint(const std::string& path, const TransientCheckpoint& ck);
bool saveCheckpoint(const std::string& path, const JitterCheckpoint& ck);

/// Load from `path`. Returns false (and leaves `out` untouched) if the
/// file is missing, truncated, or not a checkpoint of the expected kind.
bool loadCheckpoint(const std::string& path, TransientCheckpoint& out);
bool loadCheckpoint(const std::string& path, JitterCheckpoint& out);

}  // namespace rfic::diag
