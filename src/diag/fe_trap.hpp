// Floating-point exception trapping for debug runs.
//
// In normal IEEE-754 operation an invalid operation (0/0, sqrt(-1), Inf−Inf)
// quietly produces a NaN that can propagate through an entire HB or
// phase-noise solve before anyone notices. With trapping enabled, the FPU
// raises SIGFPE at the instruction that *created* the first NaN/Inf, turning
// a corrupted-spectrum bug into a stack trace at its origin.
//
// glibc-only (feenableexcept is a GNU extension); a no-op elsewhere so the
// code stays portable. Not async-signal-safe to mix with code that expects
// quiet NaNs — scope it tightly around the solver under investigation.
#pragma once

namespace rfic::diag {

/// RAII guard: enables FE_INVALID | FE_DIVBYZERO | FE_OVERFLOW traps on
/// construction, restores the previous trap mask on destruction.
class ScopedFeTrap {
 public:
  ScopedFeTrap();
  ~ScopedFeTrap();
  ScopedFeTrap(const ScopedFeTrap&) = delete;
  ScopedFeTrap& operator=(const ScopedFeTrap&) = delete;

  /// True if trapping is actually supported (and enabled) on this platform.
  static bool supported();

 private:
  int previousMask_ = 0;
};

}  // namespace rfic::diag
