// Electrostatic panel kernel: exact potential of a uniformly charged
// rectangle at an arbitrary field point (the collocation kernel of the
// method-of-moments solver — Section 4's integral-equation formulation).
#pragma once

#include "extraction/geometry.hpp"

namespace rfic::extraction {

inline constexpr Real kEps0 = 8.8541878128e-12;

/// Potential at `point` due to `panel` carrying unit *total* charge
/// (1 C spread uniformly over the panel), in vacuum.
/// Closed-form evaluation of ∫∫ dA' / (4πε₀ |r − r'|), stable for field
/// points on, near, and far from the panel (including its own centroid —
/// the self term).
Real panelPotential(const Panel& panel, const Vec3& point);

/// Collocation matrix entry helper: potential at the centroid of panel i
/// from unit total charge on panel j.
Real panelPotentialAtCentroid(const Panel& source, const Panel& target);

}  // namespace rfic::extraction
