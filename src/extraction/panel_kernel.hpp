// Electrostatic panel kernel: exact potential of a uniformly charged
// rectangle at an arbitrary field point (the collocation kernel of the
// method-of-moments solver — Section 4's integral-equation formulation).
#pragma once

#include <cstddef>
#include <vector>

#include "extraction/geometry.hpp"
#include "extraction/kernel.hpp"

namespace rfic::extraction {

inline constexpr Real kEps0 = 8.8541878128e-12;

/// Potential at `point` due to `panel` carrying unit *total* charge
/// (1 C spread uniformly over the panel), in vacuum.
/// Closed-form evaluation of ∫∫ dA' / (4πε₀ |r − r'|), stable for field
/// points on, near, and far from the panel (including its own centroid —
/// the self term).
Real panelPotential(const Panel& panel, const Vec3& point);

/// Collocation matrix entry helper: potential at the centroid of panel i
/// from unit total charge on panel j.
Real panelPotentialAtCentroid(const Panel& source, const Panel& target);

/// Precomputed local frame of a source panel: orthonormal edge directions,
/// normal, edge lengths, and the 1/(4πε₀·la·lb) charge-density scale. The
/// frame is everything `panelPotential` derives from the panel itself, so
/// evaluating one source against a span of field points costs only the
/// four corner terms per point.
struct PanelFrame {
  Vec3 corner;
  Vec3 ea, eb, en;  ///< unit edge directions and normal
  Real la = 0, lb = 0;
  Real scale = 0;   ///< 1/(4πε₀·la·lb)
};

PanelFrame makePanelFrame(const Panel& panel);
Real panelPotential(const PanelFrame& frame, const Vec3& point);

/// Batched MoM collocation kernel over a fixed mesh:
/// entry(i, j) = potential at the centroid of panel i per unit total
/// charge on panel j. All panel frames and centroids are cached at
/// construction, so row/column sweeps are tight loops with no per-entry
/// setup and no virtual dispatch inside the span — the entry path the
/// IES³ ACA sampler and dense-leaf fill run on.
class PanelPotentialKernel final : public EntryKernel {
 public:
  explicit PanelPotentialKernel(const PanelMesh& mesh);

  std::size_t size() const { return frames_.size(); }
  const Vec3& centroid(std::size_t i) const { return centroids_[i]; }

  Real entry(std::size_t i, std::size_t j) const override {
    return panelPotential(frames_[j], centroids_[i]);
  }
  void row(std::size_t i, const std::size_t* cols, std::size_t n,
           Real* out) const override;
  void column(std::size_t j, const std::size_t* rows, std::size_t m,
              Real* out) const override;

 private:
  std::vector<PanelFrame> frames_;
  std::vector<Vec3> centroids_;
};

}  // namespace rfic::extraction
