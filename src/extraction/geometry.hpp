// Geometry primitives for the field solvers of Section 4: rectangular
// surface panels, conductors as panel groups, and generators for the
// benchmark structures (plates, bus crossings, spiral traces, resonator
// assemblies).
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "common.hpp"

namespace rfic::extraction {

/// 3-vector with the handful of operations the solvers need.
struct Vec3 {
  Real x = 0, y = 0, z = 0;
  Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  Vec3 operator*(Real s) const { return {x * s, y * s, z * s}; }
  Real dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }
  Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }
  Real norm() const;
  Vec3 normalized() const;
};

/// Flat rectangular panel: corner + two orthogonal edge vectors.
struct Panel {
  Vec3 corner;
  Vec3 edgeA;
  Vec3 edgeB;
  int conductor = 0;  ///< owning conductor id

  Vec3 centroid() const { return corner + edgeA * 0.5 + edgeB * 0.5; }
  Real area() const { return edgeA.cross(edgeB).norm(); }
};

/// A discretized multi-conductor structure.
struct PanelMesh {
  std::vector<Panel> panels;
  std::vector<std::string> conductorNames;

  std::size_t numConductors() const { return conductorNames.size(); }
  int addConductor(std::string name);
};

/// Subdivide a rectangle (corner + edges) into nx × ny panels appended to
/// the mesh under conductor id `cond`.
void addRectangle(PanelMesh& mesh, int cond, const Vec3& corner,
                  const Vec3& edgeA, const Vec3& edgeB, std::size_t nx,
                  std::size_t ny);

/// Two square parallel plates of side `side` separated by `gap` (plate 0 at
/// z = 0, plate 1 at z = gap), each discretized n × n.
PanelMesh makeParallelPlates(Real side, Real gap, std::size_t n);

/// Conducting cube of side a (6 faces, n × n each) — capacitance of the
/// unit cube is a classic benchmark (≈ 0.6607 · 4πε₀ a).
PanelMesh makeCube(Real side, std::size_t n);

/// Crossing bus: `count` parallel strips on layer z = 0 (along x) and
/// `count` on z = h (along y) — the classic multi-conductor extraction
/// benchmark used for the Fig. 6 scaling study.
PanelMesh makeBusCrossing(std::size_t count, Real width, Real pitch,
                          Real length, Real layerGap, std::size_t panelsAlong);

/// A resonator assembly in the spirit of Fig. 8: two resonator plates over
/// a ground plate, coupled by a narrow line.
PanelMesh makeResonatorAssembly(std::size_t n);

}  // namespace rfic::extraction
