// Batched entry-generator interface for the kernel-independent compressed
// solvers (Section 4). IES³ only ever *samples* the interaction matrix —
// single entries while pivoting, whole rows/columns while building cross
// approximations and dense leaves. Routing those samples through batch
// entry points lets a concrete kernel amortize per-panel setup (local
// frames, centroids) across a span of targets and keeps one virtual call
// per row/column instead of one per matrix entry on the O(n·r) hot path.
#pragma once

#include <cstddef>
#include <functional>
#include <utility>

#include "common.hpp"

namespace rfic::extraction {

/// Abstract matrix-entry generator: entry(i, j) = interaction of target i
/// with source j, with batch row/column evaluation over index spans. The
/// base-class batches fall back to per-entry calls, so a kernel only
/// overrides what it can accelerate.
class EntryKernel {
 public:
  virtual ~EntryKernel() = default;

  virtual Real entry(std::size_t i, std::size_t j) const = 0;

  /// out[t] = entry(i, cols[t]) for t in [0, n).
  virtual void row(std::size_t i, const std::size_t* cols, std::size_t n,
                   Real* out) const {
    for (std::size_t t = 0; t < n; ++t) out[t] = entry(i, cols[t]);
  }

  /// out[t] = entry(rows[t], j) for t in [0, m).
  virtual void column(std::size_t j, const std::size_t* rows, std::size_t m,
                      Real* out) const {
    for (std::size_t t = 0; t < m; ++t) out[t] = entry(rows[t], j);
  }
};

/// Adapter for ad-hoc callable kernels (tests, synthetic matrices).
/// Batches devolve to per-entry calls — use a concrete EntryKernel
/// subclass where build speed matters.
class FunctionKernel final : public EntryKernel {
 public:
  using Fn = std::function<Real(std::size_t, std::size_t)>;
  explicit FunctionKernel(Fn fn) : fn_(std::move(fn)) {}
  Real entry(std::size_t i, std::size_t j) const override { return fn_(i, j); }

 private:
  Fn fn_;
};

}  // namespace rfic::extraction
