// IES³-style kernel-independent compressed representation of the dense MoM
// interaction matrix (Section 4, [21]).
//
// The matrix is recursively decomposed over a geometric cluster tree;
// blocks coupling well-separated panel groups are compressed to low-rank
// outer products U·Vᵀ. Following IES³'s kernel independence, compression
// uses only sampled matrix entries (adaptive cross approximation) followed
// by an SVD recompression to minimal rank — no multipole expansion and no
// assumption of a 1/r kernel, which is exactly the advantage over
// FastCap-style multipole methods the paper emphasizes. Storage and matvec
// cost scale near-linearly (Fig. 6); combined with Krylov iteration this
// gives the fast integral-equation solver of Table 1's right column.
//
// Engine mechanics (see DESIGN.md §8): the cluster-pair tree is first
// *planned* into a flat admissible/dense block list, then all blocks are
// compressed/filled concurrently on a perf::ThreadPool with one output
// slot per block, so the built matrix is bitwise identical for any thread
// count. Matvecs run through a pooled grow-only workspace in two phases —
// per-block Vᵀx temporaries, then per-leaf row accumulation over disjoint
// output ranges — and perform zero heap allocations in steady state
// (workspaceGrowth() is the counter-verified contract).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstddef>
#include <memory>
#include <vector>

#include "diag/thread_annotations.hpp"
#include "extraction/geometry.hpp"
#include "extraction/kernel.hpp"
#include "numeric/dense.hpp"
#include "sparse/krylov.hpp"

namespace rfic::perf {
class ThreadPool;
}

namespace rfic::extraction {

using numeric::RMat;
using numeric::RVec;

struct IES3Options {
  std::size_t leafSize = 24;   ///< max panels per cluster-tree leaf
  Real eta = 2.0;              ///< admissibility: dist ≥ diam/η
  Real tolerance = 1e-6;       ///< relative block compression tolerance
  std::size_t maxRank = 80;    ///< ACA rank cap per block
  /// Worker pool for block build, matvecs, and multi-RHS solves; nullptr
  /// uses perf::ThreadPool::global(). The pool must outlive the matrix.
  perf::ThreadPool* pool = nullptr;
  /// Chain the conductor solves serially, warm-starting each from the
  /// previous conductor's charge vector. Helps when successive conductors
  /// are geometrically similar (bus structures); disables the concurrent
  /// multi-RHS path, and changes the GMRES trajectory (results agree to
  /// solver tolerance, not bitwise).
  bool warmStart = false;
};

/// Entry generator: kernel(i, j) = matrix entry for panels i, j.
/// (Legacy callable form — see EntryKernel in kernel.hpp for the batched
/// interface the build hot path uses.)
using KernelFn = std::function<Real(std::size_t, std::size_t)>;

/// Build-time statistics: where the assembly wall time went, what the ACA
/// found, and how much of the dense matrix survived compression.
struct IES3BuildStats {
  std::uint64_t buildNs = 0;      ///< wall: tree + plan + parallel fill
  std::uint64_t compressNs = 0;   ///< ACA+SVD time, summed across threads
  std::uint64_t denseFillNs = 0;  ///< dense-leaf fill, summed across threads
  std::size_t denseBlockCount = 0;
  std::size_t lowRankBlockCount = 0;
  std::size_t rankMax = 0;
  Real rankMean = 0;              ///< mean retained rank over low-rank blocks
  /// Histogram of retained ranks in power-of-two buckets: bucket k counts
  /// blocks with rank in [2^k, 2^(k+1)), last bucket open-ended.
  std::array<std::size_t, 8> rankHistogram{};
  Real compressionRatio = 0;      ///< storedEntries / dim²
};

/// Hierarchically compressed kernel matrix.
class IES3Matrix final : public sparse::LinearOperator<Real> {
 public:
  /// Build from panel positions (cluster geometry) and a batched entry
  /// generator. The kernel is only sampled during construction and need
  /// not outlive the matrix.
  IES3Matrix(const std::vector<Vec3>& positions, const EntryKernel& kernel,
             const IES3Options& opts = {});
  /// Legacy convenience: wrap a callable (per-entry dispatch; slower build).
  IES3Matrix(const std::vector<Vec3>& positions, KernelFn kernel,
             const IES3Options& opts = {});

  std::size_t dim() const override { return n_; }
  /// Compressed matvec — the inner loop of every extraction GMRES
  /// iteration; allocation-free in steady state (pooled workspace).
  RFIC_REALTIME void apply(const RVec& x, RVec& y) const override;

  /// Stored floats (dense blocks + low-rank factors) — the Fig. 6 memory
  /// metric. Dense storage would be dim()².
  std::size_t storedEntries() const { return storedEntries_; }
  std::size_t denseBlockCount() const { return denseBlocks_.size(); }
  std::size_t lowRankBlockCount() const { return lowRankBlocks_.size(); }
  /// Inverse of panel self-interaction (Jacobi) preconditioner values.
  const RVec& diagonal() const { return diag_; }
  const IES3BuildStats& buildStats() const { return stats_; }

  /// Matvec workspace growth events (pool acquisitions that allocated).
  /// Flat across repeated apply() calls = the zero-allocation steady-state
  /// contract, asserted by counters rather than allocator hooks.
  std::uint64_t workspaceGrowth() const {
    return wsGrows_.load(std::memory_order_relaxed);
  }
  /// Operator applications since construction, and the wall time inside
  /// them (summed across concurrent callers).
  std::uint64_t matvecCount() const {
    return matvecs_.load(std::memory_order_relaxed);
  }
  std::uint64_t matvecNs() const {
    return matvecNs_.load(std::memory_order_relaxed);
  }

  /// Block-Jacobi preconditioner: LU factors of every diagonal leaf block
  /// (near-field self interactions). Far stronger than the scalar diagonal
  /// for refined meshes. The returned operator is self-contained — it
  /// copies the permutation and owns its factors, so it may outlive the
  /// matrix — and its apply() is allocation-free in steady state.
  std::unique_ptr<sparse::LinearOperator<Real>> makeBlockJacobi() const;

 private:
  struct Cluster {
    std::size_t begin = 0, end = 0;  // range in perm_
    Vec3 lo, hi;                     // bounding box
    int left = -1, right = -1;
    Real diameter() const;
  };
  struct DenseBlock {
    std::size_t rowCluster, colCluster;
    RMat a;
  };
  struct LowRankBlock {
    std::size_t rowCluster, colCluster;
    RMat u, v;  // block ≈ u · vᵀ
  };
  /// Planned block: an admissible (compress) or leaf-pair (dense) task.
  struct BlockTask {
    std::size_t rowCluster, colCluster;
    bool admissible;
  };
  /// Per-leaf matvec work: the dense blocks rooted at this leaf plus the
  /// low-rank blocks whose row range covers it. Leaves partition [0, n),
  /// so phase-2 accumulation writes disjoint output ranges.
  struct LeafWork {
    std::size_t begin = 0, end = 0;
    std::vector<std::size_t> dense;    // indices into denseBlocks_
    std::vector<std::size_t> lowRank;  // indices into lowRankBlocks_
    std::size_t cost = 0;              // flops estimate for scheduling
  };
  /// Grow-once matvec scratch; pooled so concurrent apply() calls (the
  /// multi-RHS solves) each run on their own buffers.
  struct Workspace {
    RVec xt, yt;   // permuted input / output
    RVec scratch;  // per-low-rank-block Vᵀx temporaries, at lrOffset_
  };

  int buildTree(std::vector<Vec3>& pts, std::size_t begin, std::size_t end,
                const IES3Options& opts);
  void planBlocks(const IES3Options& opts, std::vector<BlockTask>& tasks) const;
  void buildBlocks(const EntryKernel& kernel, const IES3Options& opts);
  void buildLeafWork();
  static Real clusterDistance(const Cluster& a, const Cluster& b);

  std::unique_ptr<Workspace> acquireWorkspace() const RFIC_EXCLUDES(wsMu_);
  void releaseWorkspace(std::unique_ptr<Workspace> ws) const
      RFIC_EXCLUDES(wsMu_);

  std::size_t n_ = 0;
  perf::ThreadPool* pool_ = nullptr;
  std::vector<std::size_t> perm_;  // tree ordering -> original index
  std::vector<Cluster> clusters_;
  std::vector<DenseBlock> denseBlocks_;
  std::vector<LowRankBlock> lowRankBlocks_;
  std::vector<std::size_t> leaves_;     // leaf cluster indices, by begin
  std::vector<LeafWork> leafWork_;      // parallel to leaves_
  std::vector<std::size_t> lrOffset_;   // scratch offset per low-rank block
  std::size_t scratchSize_ = 0;
  std::size_t storedEntries_ = 0;
  RVec diag_;
  IES3BuildStats stats_;

  mutable diag::Mutex wsMu_;
  mutable std::vector<std::unique_ptr<Workspace>> wsPool_
      RFIC_GUARDED_BY(wsMu_);
  mutable std::atomic<std::uint64_t> wsGrows_{0};
  mutable std::atomic<std::uint64_t> matvecs_{0};
  mutable std::atomic<std::uint64_t> matvecNs_{0};
};

/// Capacitance extraction with the compressed matrix + preconditioned
/// GMRES: one multi-RHS sweep (all conductors solved concurrently on the
/// pool, each with a persistent per-conductor GmresWorkspace). Reports
/// solver statistics for the Fig. 6 study.
struct IES3CapacitanceResult {
  RMat matrix;  ///< Maxwell capacitance matrix [F]
  std::size_t panelCount = 0;
  std::size_t storedEntries = 0;
  std::size_t gmresIterations = 0;
  IES3BuildStats buildStats;
  std::uint64_t solveNs = 0;  ///< wall ns in the multi-RHS GMRES stage
  std::uint64_t matvecs = 0;  ///< operator applications across all solves
};

IES3CapacitanceResult extractCapacitanceIES3(const PanelMesh& mesh,
                                             const IES3Options& opts = {});

}  // namespace rfic::extraction
