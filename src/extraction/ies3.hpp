// IES³-style kernel-independent compressed representation of the dense MoM
// interaction matrix (Section 4, [21]).
//
// The matrix is recursively decomposed over a geometric cluster tree;
// blocks coupling well-separated panel groups are compressed to low-rank
// outer products U·Vᵀ. Following IES³'s kernel independence, compression
// uses only sampled matrix entries (adaptive cross approximation) followed
// by an SVD recompression to minimal rank — no multipole expansion and no
// assumption of a 1/r kernel, which is exactly the advantage over
// FastCap-style multipole methods the paper emphasizes. Storage and matvec
// cost scale near-linearly (Fig. 6); combined with Krylov iteration this
// gives the fast integral-equation solver of Table 1's right column.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <vector>

#include "extraction/geometry.hpp"
#include "numeric/dense.hpp"
#include "sparse/krylov.hpp"

namespace rfic::extraction {

using numeric::RMat;
using numeric::RVec;

struct IES3Options {
  std::size_t leafSize = 24;   ///< max panels per cluster-tree leaf
  Real eta = 2.0;              ///< admissibility: dist ≥ diam/η
  Real tolerance = 1e-6;       ///< relative block compression tolerance
  std::size_t maxRank = 80;    ///< ACA rank cap per block
};

/// Entry generator: kernel(i, j) = matrix entry for panels i, j.
using KernelFn = std::function<Real(std::size_t, std::size_t)>;

/// Hierarchically compressed kernel matrix.
class IES3Matrix final : public sparse::LinearOperator<Real> {
 public:
  /// Build from panel positions (cluster geometry) and an entry generator.
  IES3Matrix(const std::vector<Vec3>& positions, KernelFn kernel,
             const IES3Options& opts = {});

  std::size_t dim() const override { return n_; }
  void apply(const RVec& x, RVec& y) const override;

  /// Stored floats (dense blocks + low-rank factors) — the Fig. 6 memory
  /// metric. Dense storage would be dim()².
  std::size_t storedEntries() const { return storedEntries_; }
  std::size_t denseBlockCount() const { return denseBlocks_.size(); }
  std::size_t lowRankBlockCount() const { return lowRankBlocks_.size(); }
  /// Inverse of panel self-interaction (Jacobi) preconditioner values.
  const RVec& diagonal() const { return diag_; }

  /// Block-Jacobi preconditioner: LU factors of every diagonal leaf block
  /// (near-field self interactions). Far stronger than the scalar diagonal
  /// for refined meshes. The returned operator references this matrix.
  std::unique_ptr<sparse::LinearOperator<Real>> makeBlockJacobi() const;

 private:
  struct Cluster {
    std::size_t begin = 0, end = 0;  // range in perm_
    Vec3 lo, hi;                     // bounding box
    int left = -1, right = -1;
    Real diameter() const;
  };
  struct DenseBlock {
    std::size_t rowCluster, colCluster;
    RMat a;
  };
  struct LowRankBlock {
    std::size_t rowCluster, colCluster;
    RMat u, v;  // block ≈ u · vᵀ
  };

  int buildTree(std::vector<Vec3>& pts, std::size_t begin, std::size_t end,
                const IES3Options& opts);
  void buildBlocks(std::size_t rc, std::size_t cc, const IES3Options& opts);
  static Real clusterDistance(const Cluster& a, const Cluster& b);

  std::size_t n_ = 0;
  KernelFn kernel_;
  std::vector<std::size_t> perm_;  // tree ordering -> original index
  std::vector<Cluster> clusters_;
  std::vector<DenseBlock> denseBlocks_;
  std::vector<LowRankBlock> lowRankBlocks_;
  std::size_t storedEntries_ = 0;
  RVec diag_;
};

/// Capacitance extraction with the compressed matrix + preconditioned
/// GMRES. Reports solver statistics for the Fig. 6 study.
struct IES3CapacitanceResult {
  RMat matrix;  ///< Maxwell capacitance matrix [F]
  std::size_t panelCount = 0;
  std::size_t storedEntries = 0;
  std::size_t gmresIterations = 0;
};

IES3CapacitanceResult extractCapacitanceIES3(const PanelMesh& mesh,
                                             const IES3Options& opts = {});

}  // namespace rfic::extraction
