#include "extraction/spiral.hpp"

#include <cmath>

#include "extraction/panel_kernel.hpp"

namespace rfic::extraction {

std::vector<Segment> makeSquareSpiral(const SpiralParams& p) {
  RFIC_REQUIRE(p.turns >= 1 && p.outerSize > 0 && p.width > 0,
               "makeSquareSpiral: bad parameters");
  const Real pitch = p.width + p.spacing;
  RFIC_REQUIRE(p.outerSize > 2.0 * pitch * static_cast<Real>(p.turns),
               "makeSquareSpiral: turns do not fit in outerSize");

  std::vector<Segment> segs;
  // Walk the spiral inward: headings +x, +y, −x, −y; the side length
  // sequence is d, d, d−p, d−p, d−2p, … with d = outer − width.
  Vec3 pos{0, 0, 0};
  const std::array<Vec3, 4> dirs{{{1, 0, 0}, {0, 1, 0}, {-1, 0, 0}, {0, -1, 0}}};
  Real side = p.outerSize - p.width;
  std::size_t dir = 0;
  for (std::size_t k = 0; k < 4 * p.turns; ++k) {
    if (k >= 2 && k % 2 == 0) side -= pitch;
    RFIC_REQUIRE(side > 0, "makeSquareSpiral: spiral collapsed");
    const Vec3 end = pos + dirs[dir] * side;
    // Optionally split the side into sub-segments (refined reference).
    const std::size_t ns = p.segmentsPerSide;
    for (std::size_t s = 0; s < ns; ++s) {
      Segment seg;
      seg.start = pos + dirs[dir] * (side * static_cast<Real>(s) /
                                     static_cast<Real>(ns));
      seg.end = pos + dirs[dir] * (side * static_cast<Real>(s + 1) /
                                   static_cast<Real>(ns));
      seg.width = p.width;
      seg.thickness = p.thickness;
      seg.sign = 1;
      segs.push_back(seg);
    }
    pos = end;
    dir = (dir + 1) % 4;
  }
  return segs;
}

SpiralModel buildSpiralModel(const SpiralParams& p) {
  const auto segs = makeSquareSpiral(p);
  SpiralModel m;
  m.thickness = p.thickness;
  m.resistivity = p.resistivity;

  // PEEC series elements.
  Real totalLen = 0;
  for (const auto& s : segs) totalLen += (s.end - s.start).norm();
  m.seriesL = loopInductance(segs);
  m.seriesRdc = p.resistivity * totalLen / (p.width * p.thickness);

  // Oxide and substrate shunt elements from the metal footprint.
  const Real area = totalLen * p.width;
  m.cox = kEps0 * p.oxideEps * area / p.oxideThickness;
  m.rsub = p.subResistivity * p.subThickness / area;
  m.csub = kEps0 * p.subEps * area / p.subThickness;
  return m;
}

Complex SpiralModel::inputImpedance(Real freqHz) const {
  const Real w = kTwoPi * freqHz;
  const Complex jw(0.0, w);
  const Real rf =
      seriesRdc * skinEffectFactor(freqHz, thickness, resistivity);
  const Complex zSeries = Complex(rf, 0.0) + jw * seriesL;
  if (w == 0) return zSeries;
  // π-model: half the oxide capacitance at each port, in series with the
  // substrate R‖C; the far port is grounded, shorting its shunt branch.
  const Complex zCox = 1.0 / (jw * (0.5 * cox));
  const Complex ySub = Complex(1.0 / (2.0 * rsub), 0.0) + jw * (0.5 * csub);
  const Complex zShunt = zCox + 1.0 / ySub;
  return zSeries * zShunt / (zSeries + zShunt);
}

Real SpiralModel::effectiveInductance(Real freqHz) const {
  return inputImpedance(freqHz).imag() / (kTwoPi * freqHz);
}

Real SpiralModel::qualityFactor(Real freqHz) const {
  const Complex z = inputImpedance(freqHz);
  return z.imag() / z.real();
}

}  // namespace rfic::extraction
