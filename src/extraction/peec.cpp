#include "extraction/peec.hpp"

#include <array>
#include <cmath>

namespace rfic::extraction {

namespace {

// 12-point Gauss–Legendre nodes/weights on [0, 1].
struct GaussRule {
  std::vector<Real> x, w;
};
GaussRule gaussRule(std::size_t n) {
  // Newton iteration on Legendre polynomials, standard construction.
  GaussRule r;
  r.x.resize(n);
  r.w.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    Real t = std::cos(kPi * (static_cast<Real>(i) + 0.75) /
                      (static_cast<Real>(n) + 0.5));
    for (int it = 0; it < 100; ++it) {
      Real p0 = 1.0, p1 = t;
      for (std::size_t k = 2; k <= n; ++k) {
        const Real pk = ((2.0 * static_cast<Real>(k) - 1.0) * t * p1 -
                         (static_cast<Real>(k) - 1.0) * p0) /
                        static_cast<Real>(k);
        p0 = p1;
        p1 = pk;
      }
      const Real dp = static_cast<Real>(n) * (t * p1 - p0) / (t * t - 1.0);
      const Real dt = p1 / dp;
      t -= dt;
      if (std::abs(dt) < 1e-15) break;
    }
    Real p0 = 1.0, p1 = t;
    for (std::size_t k = 2; k <= n; ++k) {
      const Real pk = ((2.0 * static_cast<Real>(k) - 1.0) * t * p1 -
                       (static_cast<Real>(k) - 1.0) * p0) /
                      static_cast<Real>(k);
      p0 = p1;
      p1 = pk;
    }
    const Real dp = static_cast<Real>(n) * (t * p1 - p0) / (t * t - 1.0);
    r.x[i] = 0.5 * (1.0 - t);  // map [-1,1] -> [0,1], order irrelevant
    r.w[i] = 1.0 / ((1.0 - t * t) * dp * dp);
  }
  return r;
}

}  // namespace

Real partialSelfInductance(const Segment& s) {
  const Real l = (s.end - s.start).norm();
  RFIC_REQUIRE(l > 0 && s.width > 0 && s.thickness > 0,
               "partialSelfInductance: bad segment");
  const Real wt = s.width + s.thickness;
  // Ruehli's approximation for a rectangular bar.
  return kMu0 * l / (2.0 * kPi) *
         (std::log(2.0 * l / wt) + 0.5 + 0.2235 * wt / l);
}

Real partialMutualInductance(const Segment& a, const Segment& b,
                             std::size_t quadraturePoints) {
  const Vec3 da = a.end - a.start;
  const Vec3 db = b.end - b.start;
  const Real la = da.norm(), lb = db.norm();
  RFIC_REQUIRE(la > 0 && lb > 0, "partialMutualInductance: bad segments");
  const Real cosang = da.dot(db) / (la * lb);
  if (std::abs(cosang) < 1e-12) return 0.0;  // perpendicular

  const GaussRule rule = gaussRule(quadraturePoints);
  // Neumann: M = (μ0/4π)·(dl_a·dl_b) ∬ ds dt / |r_a(s) − r_b(t)|.
  Real sum = 0;
  for (std::size_t i = 0; i < quadraturePoints; ++i) {
    const Vec3 pa = a.start + da * rule.x[i];
    for (std::size_t j = 0; j < quadraturePoints; ++j) {
      const Vec3 pb = b.start + db * rule.x[j];
      Real r = (pa - pb).norm();
      // Regularize near-touching filaments with the geometric-mean distance
      // of the cross sections.
      const Real gmd = 0.2235 * (a.width + a.thickness);
      r = std::max(r, gmd);
      sum += rule.w[i] * rule.w[j] / r;
    }
  }
  return kMu0 / (4.0 * kPi) * cosang * la * lb * sum;
}

Real loopInductance(const std::vector<Segment>& segs) {
  Real total = 0;
  for (std::size_t i = 0; i < segs.size(); ++i) {
    total += partialSelfInductance(segs[i]);
    for (std::size_t j = i + 1; j < segs.size(); ++j) {
      total += 2.0 * static_cast<Real>(segs[i].sign * segs[j].sign) *
               partialMutualInductance(segs[i], segs[j]);
    }
  }
  return total;
}

Real segmentResistanceDC(const Segment& s, Real resistivity) {
  const Real l = (s.end - s.start).norm();
  return resistivity * l / (s.width * s.thickness);
}

Real skinEffectFactor(Real freqHz, Real thickness, Real resistivity) {
  if (freqHz <= 0) return 1.0;
  const Real delta = std::sqrt(resistivity / (kPi * freqHz * kMu0));
  const Real ratio = thickness / delta;
  if (ratio < 1e-6) return 1.0;
  return ratio / (1.0 - std::exp(-ratio));
}

}  // namespace rfic::extraction
