// Method-of-moments electrostatic solver (Section 4, integral-equation
// class) and a finite-difference Laplace solver (differential-equation
// class) on the same physical problem — the two columns of Table 1.
#pragma once

#include "extraction/geometry.hpp"
#include "numeric/dense.hpp"

namespace rfic::extraction {

using numeric::RMat;
using numeric::RVec;

/// Dense collocation matrix P with P(i,j) = potential at centroid i per
/// unit total charge on panel j.
RMat assembleMoMMatrix(const PanelMesh& mesh);

struct CapacitanceResult {
  RMat matrix;      ///< Maxwell capacitance matrix [F], numConductors²
  /// Panel charge distribution with conductor 0 at 1 V, all others
  /// grounded (the first excitation column).
  RVec charges;
  std::size_t panelCount = 0;
};

/// Capacitance matrix by dense LU: column k = charges with conductor k at
/// 1 V, all others grounded. The matrix is factored once and all
/// numConductors excitation columns are solved against that single
/// factorization.
CapacitanceResult extractCapacitanceDense(const PanelMesh& mesh);

/// Parallel-plate analytic estimate ε₀·A/d (no fringe) for sanity checks.
Real parallelPlateEstimate(Real side, Real gap);

/// --- Differential-equation contender for Table 1 --------------------- //
/// 3-D finite-difference Laplace solve of the parallel-plate problem on an
/// n³ grid: Dirichlet plates embedded in a grounded box. Reports the
/// quantities Table 1 contrasts: unknown count (volume vs surface),
/// matrix storage (sparse nnz vs dense n²), and conditioning.
struct FDLaplaceResult {
  std::size_t unknowns = 0;
  std::size_t nnz = 0;
  std::size_t cgIterations = 0;
  Real capacitance = 0;  ///< from the plate flux [F]
};

FDLaplaceResult solveParallelPlatesFD(Real side, Real gap, std::size_t n);

/// Symmetric-matrix condition estimate via power iteration on A and
/// CG-based inverse power iteration (for the Table 1 conditioning row).
Real symmetricConditionEstimate(const numeric::RMat& a, std::size_t iters = 60);

}  // namespace rfic::extraction
