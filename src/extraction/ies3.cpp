#include "extraction/ies3.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "extraction/panel_kernel.hpp"
#include "numeric/lu.hpp"
#include "numeric/qr.hpp"
#include "numeric/svd.hpp"

namespace rfic::extraction {

Real IES3Matrix::Cluster::diameter() const {
  return (hi - lo).norm();
}

Real IES3Matrix::clusterDistance(const Cluster& a, const Cluster& b) {
  auto axisGap = [](Real alo, Real ahi, Real blo, Real bhi) {
    if (ahi < blo) return blo - ahi;
    if (bhi < alo) return alo - bhi;
    return 0.0;
  };
  const Real dx = axisGap(a.lo.x, a.hi.x, b.lo.x, b.hi.x);
  const Real dy = axisGap(a.lo.y, a.hi.y, b.lo.y, b.hi.y);
  const Real dz = axisGap(a.lo.z, a.hi.z, b.lo.z, b.hi.z);
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

int IES3Matrix::buildTree(std::vector<Vec3>& pts, std::size_t begin,
                          std::size_t end, const IES3Options& opts) {
  Cluster c;
  c.begin = begin;
  c.end = end;
  c.lo = {1e300, 1e300, 1e300};
  c.hi = {-1e300, -1e300, -1e300};
  for (std::size_t t = begin; t < end; ++t) {
    const Vec3& p = pts[perm_[t]];
    c.lo.x = std::min(c.lo.x, p.x);
    c.lo.y = std::min(c.lo.y, p.y);
    c.lo.z = std::min(c.lo.z, p.z);
    c.hi.x = std::max(c.hi.x, p.x);
    c.hi.y = std::max(c.hi.y, p.y);
    c.hi.z = std::max(c.hi.z, p.z);
  }
  const int self = static_cast<int>(clusters_.size());
  clusters_.push_back(c);
  if (end - begin > opts.leafSize) {
    // Split along the longest box axis at the median.
    const Vec3 ext = c.hi - c.lo;
    auto key = [&](std::size_t orig) {
      const Vec3& p = pts[orig];
      if (ext.x >= ext.y && ext.x >= ext.z) return p.x;
      if (ext.y >= ext.z) return p.y;
      return p.z;
    };
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(perm_.begin() + static_cast<std::ptrdiff_t>(begin),
                     perm_.begin() + static_cast<std::ptrdiff_t>(mid),
                     perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t a, std::size_t b) {
                       return key(a) < key(b);
                     });
    const int l = buildTree(pts, begin, mid, opts);
    const int r = buildTree(pts, mid, end, opts);
    clusters_[static_cast<std::size_t>(self)].left = l;
    clusters_[static_cast<std::size_t>(self)].right = r;
  }
  return self;
}

namespace {

// Adaptive cross approximation with partial pivoting on an implicitly
// defined m×n block; returns factors U (m×r), V (n×r) with block ≈ U·Vᵀ.
void acaCompress(const std::function<Real(std::size_t, std::size_t)>& entry,
                 std::size_t m, std::size_t n, Real tol, std::size_t maxRank,
                 RMat& uOut, RMat& vOut) {
  RFIC_REQUIRE(m > 0 && n > 0, "acaCompress: empty block");
  RFIC_REQUIRE(tol > 0, "acaCompress: tolerance must be positive");
  std::vector<RVec> us, vs;
  std::vector<char> rowUsed(m, 0), colUsed(n, 0);
  Real frob2 = 0;  // running ‖S_k‖²_F estimate
  std::size_t pivotRow = 0;

  for (std::size_t k = 0; k < std::min({m, n, maxRank}); ++k) {
    // Residual row at pivotRow.
    RVec row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = entry(pivotRow, j);
    for (std::size_t p = 0; p < us.size(); ++p)
      for (std::size_t j = 0; j < n; ++j)
        row[j] -= us[p][pivotRow] * vs[p][j];
    // Column pivot.
    std::size_t pj = n;
    Real best = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (colUsed[j]) continue;
      const Real a = std::abs(row[j]);
      if (a > best) {
        best = a;
        pj = j;
      }
    }
    rowUsed[pivotRow] = 1;
    if (pj == n || best == 0) break;
    colUsed[pj] = 1;

    const Real piv = row[pj];
    RVec v = row;
    v *= 1.0 / piv;
    RVec u(m);
    for (std::size_t i = 0; i < m; ++i) u[i] = entry(i, pj);
    for (std::size_t p = 0; p < us.size(); ++p)
      for (std::size_t i = 0; i < m; ++i) u[i] -= vs[p][pj] * us[p][i];

    const Real nu = numeric::norm2(u), nv = numeric::norm2(v);
    frob2 += nu * nu * nv * nv;
    us.push_back(std::move(u));
    vs.push_back(std::move(v));
    if (nu * nv <= tol * std::sqrt(frob2)) break;

    // Next pivot row: largest unused residual entry of the new column.
    pivotRow = m;
    best = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (rowUsed[i]) continue;
      const Real a = std::abs(us.back()[i]);
      if (a >= best) {
        best = a;
        pivotRow = i;
      }
    }
    if (pivotRow == m) break;
  }

  const std::size_t r = us.size();
  uOut = RMat(m, r);
  vOut = RMat(n, r);
  for (std::size_t p = 0; p < r; ++p) {
    for (std::size_t i = 0; i < m; ++i) uOut(i, p) = us[p][i];
    for (std::size_t j = 0; j < n; ++j) vOut(j, p) = vs[p][j];
  }
}

// SVD recompression of U·Vᵀ to minimal rank at relative tolerance tol.
void svdRecompress(RMat& u, RMat& v, Real tol) {
  const std::size_t r = u.cols();
  if (r == 0 || u.rows() < r || v.rows() < r) return;
  const numeric::ThinQR qu = numeric::thinQR(u);
  const numeric::ThinQR qv = numeric::thinQR(v);
  // Core = Ru · Rvᵀ (r × r).
  const RMat core = qu.r * qv.r.transposed();
  const numeric::SVD dec = numeric::svd(core);
  const std::size_t keep = numeric::numericalRank(dec, tol);
  if (keep >= r) return;  // nothing gained
  // U ← Qu·Us·diag(s)  (m×keep), V ← Qv·Vs  (n×keep).
  RMat usS(r, keep);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t k = 0; k < keep; ++k) usS(i, k) = dec.u(i, k) * dec.s[k];
  RMat vsK(r, keep);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t k = 0; k < keep; ++k) vsK(i, k) = dec.v(i, k);
  u = qu.q * usS;
  v = qv.q * vsK;
}

}  // namespace

void IES3Matrix::buildBlocks(std::size_t rc, std::size_t cc,
                             const IES3Options& opts) {
  const Cluster& a = clusters_[rc];
  const Cluster& b = clusters_[cc];
  const Real dist = clusterDistance(a, b);
  // Admissibility: both clusters separated on the scale of their diameters.
  // The ACA+SVD pass then finds the numerical rank by sampling the actual
  // matrix — the IES³ kernel-independence observation: no multipole
  // expansion and no 1/r assumption is involved.
  const Real diam = std::max(a.diameter(), b.diameter());

  if (dist > 0 && diam <= opts.eta * dist) {
    // Admissible: sample-and-compress, kernel independently.
    const std::size_t m = a.end - a.begin, n = b.end - b.begin;
    auto entry = [&](std::size_t i, std::size_t j) {
      return kernel_(perm_[a.begin + i], perm_[b.begin + j]);
    };
    LowRankBlock blk;
    blk.rowCluster = rc;
    blk.colCluster = cc;
    acaCompress(entry, m, n, 0.1 * opts.tolerance, opts.maxRank, blk.u,
                blk.v);
    svdRecompress(blk.u, blk.v, opts.tolerance);
    if (blk.u.cols() > 0) {
      storedEntries_ += blk.u.cols() * (m + n);
      lowRankBlocks_.push_back(std::move(blk));
    }
    return;
  }

  const bool aLeaf = a.left < 0, bLeaf = b.left < 0;
  if (aLeaf && bLeaf) {
    const std::size_t m = a.end - a.begin, n = b.end - b.begin;
    DenseBlock blk;
    blk.rowCluster = rc;
    blk.colCluster = cc;
    blk.a = RMat(m, n);
    for (std::size_t i = 0; i < m; ++i)
      for (std::size_t j = 0; j < n; ++j)
        blk.a(i, j) = kernel_(perm_[a.begin + i], perm_[b.begin + j]);
    storedEntries_ += m * n;
    denseBlocks_.push_back(std::move(blk));
    return;
  }
  // Quadtree recursion: split both sides when possible so blocks stay
  // roughly square (tall thin blocks compress poorly).
  if (!aLeaf && !bLeaf) {
    buildBlocks(static_cast<std::size_t>(a.left),
                static_cast<std::size_t>(b.left), opts);
    buildBlocks(static_cast<std::size_t>(a.left),
                static_cast<std::size_t>(b.right), opts);
    buildBlocks(static_cast<std::size_t>(a.right),
                static_cast<std::size_t>(b.left), opts);
    buildBlocks(static_cast<std::size_t>(a.right),
                static_cast<std::size_t>(b.right), opts);
  } else if (!aLeaf) {
    buildBlocks(static_cast<std::size_t>(a.left), cc, opts);
    buildBlocks(static_cast<std::size_t>(a.right), cc, opts);
  } else {
    buildBlocks(rc, static_cast<std::size_t>(b.left), opts);
    buildBlocks(rc, static_cast<std::size_t>(b.right), opts);
  }
}

IES3Matrix::IES3Matrix(const std::vector<Vec3>& positions, KernelFn kernel,
                       const IES3Options& opts)
    : n_(positions.size()), kernel_(std::move(kernel)) {
  RFIC_REQUIRE(n_ > 0, "IES3Matrix: empty geometry");
  perm_.resize(n_);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  std::vector<Vec3> pts = positions;
  buildTree(pts, 0, n_, opts);
  buildBlocks(0, 0, opts);
  diag_ = RVec(n_);
  for (std::size_t i = 0; i < n_; ++i) diag_[i] = kernel_(i, i);
}

void IES3Matrix::apply(const RVec& x, RVec& y) const {
  RFIC_REQUIRE(x.size() == n_, "IES3Matrix::apply size mismatch");
  RVec xt(n_), yt(n_);
  for (std::size_t t = 0; t < n_; ++t) xt[t] = x[perm_[t]];

  for (const auto& blk : denseBlocks_) {
    const Cluster& a = clusters_[blk.rowCluster];
    const Cluster& b = clusters_[blk.colCluster];
    const std::size_t m = a.end - a.begin, n = b.end - b.begin;
    for (std::size_t i = 0; i < m; ++i) {
      Real s = 0;
      const Real* row = blk.a.rowPtr(i);
      for (std::size_t j = 0; j < n; ++j) s += row[j] * xt[b.begin + j];
      yt[a.begin + i] += s;
    }
  }
  for (const auto& blk : lowRankBlocks_) {
    const Cluster& a = clusters_[blk.rowCluster];
    const Cluster& b = clusters_[blk.colCluster];
    const std::size_t m = a.end - a.begin, n = b.end - b.begin;
    const std::size_t r = blk.u.cols();
    RVec t(r);
    for (std::size_t k = 0; k < r; ++k) {
      Real s = 0;
      for (std::size_t j = 0; j < n; ++j) s += blk.v(j, k) * xt[b.begin + j];
      t[k] = s;
    }
    for (std::size_t i = 0; i < m; ++i) {
      Real s = 0;
      const Real* row = blk.u.rowPtr(i);
      for (std::size_t k = 0; k < r; ++k) s += row[k] * t[k];
      yt[a.begin + i] += s;
    }
  }

  y.resize(n_);
  for (std::size_t t = 0; t < n_; ++t) y[perm_[t]] = yt[t];
}

namespace {

// Block-Jacobi over the diagonal leaf blocks; unit action elsewhere.
class BlockJacobiPrec final : public sparse::LinearOperator<Real> {
 public:
  BlockJacobiPrec(std::size_t n, const std::vector<std::size_t>& perm,
                  std::vector<std::pair<std::size_t, std::size_t>> ranges,
                  std::vector<numeric::LU<Real>> lus)
      : n_(n), perm_(perm), ranges_(std::move(ranges)), lus_(std::move(lus)) {}

  std::size_t dim() const override { return n_; }
  void apply(const RVec& x, RVec& y) const override {
    RVec xt(n_);
    for (std::size_t t = 0; t < n_; ++t) xt[t] = x[perm_[t]];
    RVec yt = xt;  // identity outside the diagonal blocks
    for (std::size_t b = 0; b < ranges_.size(); ++b) {
      const auto [lo, hi] = ranges_[b];
      RVec seg(hi - lo);
      for (std::size_t i = lo; i < hi; ++i) seg[i - lo] = xt[i];
      const RVec sol = lus_[b].solve(seg);
      for (std::size_t i = lo; i < hi; ++i) yt[i] = sol[i - lo];
    }
    y.resize(n_);
    for (std::size_t t = 0; t < n_; ++t) y[perm_[t]] = yt[t];
  }

 private:
  std::size_t n_;
  const std::vector<std::size_t>& perm_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<numeric::LU<Real>> lus_;
};

class DiagPrec final : public sparse::LinearOperator<Real> {
 public:
  explicit DiagPrec(const RVec& d) : inv_(d.size()) {
    for (std::size_t i = 0; i < d.size(); ++i)
      inv_[i] = d[i] != 0 ? 1.0 / d[i] : 1.0;
  }
  std::size_t dim() const override { return inv_.size(); }
  void apply(const RVec& x, RVec& y) const override {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_[i] * x[i];
  }

 private:
  RVec inv_;
};

}  // namespace

std::unique_ptr<sparse::LinearOperator<Real>> IES3Matrix::makeBlockJacobi()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<numeric::LU<Real>> lus;
  for (const auto& blk : denseBlocks_) {
    if (blk.rowCluster != blk.colCluster) continue;
    const Cluster& c = clusters_[blk.rowCluster];
    ranges.emplace_back(c.begin, c.end);
    lus.emplace_back(blk.a);
  }
  return std::make_unique<BlockJacobiPrec>(n_, perm_, std::move(ranges),
                                           std::move(lus));
}

IES3CapacitanceResult extractCapacitanceIES3(const PanelMesh& mesh,
                                             const IES3Options& opts) {
  const std::size_t n = mesh.panels.size();
  const std::size_t nc = mesh.numConductors();
  RFIC_REQUIRE(n > 0 && nc > 0, "extractCapacitanceIES3: empty mesh");

  std::vector<Vec3> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = mesh.panels[i].centroid();
  const IES3Matrix a(
      pos,
      [&mesh](std::size_t i, std::size_t j) {
        return panelPotential(mesh.panels[j], mesh.panels[i].centroid());
      },
      opts);

  IES3CapacitanceResult out;
  out.panelCount = n;
  out.storedEntries = a.storedEntries();
  out.matrix = RMat(nc, nc);

  const auto prec = a.makeBlockJacobi();
  sparse::IterativeOptions io;
  io.tolerance = 1e-8;
  io.maxIterations = 1000;
  io.restart = 120;

  RVec v(n), q(n);
  for (std::size_t k = 0; k < nc; ++k) {
    for (std::size_t i = 0; i < n; ++i)
      v[i] = (mesh.panels[i].conductor == static_cast<int>(k)) ? 1.0 : 0.0;
    q.setZero();
    const auto st = sparse::gmres(a, v, q, prec.get(), io);
    if (!st.converged)
      failNumerical("extractCapacitanceIES3: GMRES failed to converge");
    out.gmresIterations += st.iterations;
    for (std::size_t i = 0; i < n; ++i)
      out.matrix(static_cast<std::size_t>(mesh.panels[i].conductor), k) +=
          q[i];
  }
  return out;
}

}  // namespace rfic::extraction
