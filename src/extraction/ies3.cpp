#include "extraction/ies3.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>

#include "diag/resilience.hpp"
#include "extraction/panel_kernel.hpp"
#include "numeric/lu.hpp"
#include "numeric/qr.hpp"
#include "numeric/svd.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"

namespace rfic::extraction {

Real IES3Matrix::Cluster::diameter() const {
  return (hi - lo).norm();
}

Real IES3Matrix::clusterDistance(const Cluster& a, const Cluster& b) {
  auto axisGap = [](Real alo, Real ahi, Real blo, Real bhi) {
    if (ahi < blo) return blo - ahi;
    if (bhi < alo) return alo - bhi;
    return 0.0;
  };
  const Real dx = axisGap(a.lo.x, a.hi.x, b.lo.x, b.hi.x);
  const Real dy = axisGap(a.lo.y, a.hi.y, b.lo.y, b.hi.y);
  const Real dz = axisGap(a.lo.z, a.hi.z, b.lo.z, b.hi.z);
  return std::sqrt(dx * dx + dy * dy + dz * dz);
}

int IES3Matrix::buildTree(std::vector<Vec3>& pts, std::size_t begin,
                          std::size_t end, const IES3Options& opts) {
  Cluster c;
  c.begin = begin;
  c.end = end;
  c.lo = {1e300, 1e300, 1e300};
  c.hi = {-1e300, -1e300, -1e300};
  for (std::size_t t = begin; t < end; ++t) {
    const Vec3& p = pts[perm_[t]];
    c.lo.x = std::min(c.lo.x, p.x);
    c.lo.y = std::min(c.lo.y, p.y);
    c.lo.z = std::min(c.lo.z, p.z);
    c.hi.x = std::max(c.hi.x, p.x);
    c.hi.y = std::max(c.hi.y, p.y);
    c.hi.z = std::max(c.hi.z, p.z);
  }
  const int self = static_cast<int>(clusters_.size());
  clusters_.push_back(c);
  if (end - begin > opts.leafSize) {
    // Split along the longest box axis at the median.
    const Vec3 ext = c.hi - c.lo;
    auto key = [&](std::size_t orig) {
      const Vec3& p = pts[orig];
      if (ext.x >= ext.y && ext.x >= ext.z) return p.x;
      if (ext.y >= ext.z) return p.y;
      return p.z;
    };
    const std::size_t mid = begin + (end - begin) / 2;
    std::nth_element(perm_.begin() + static_cast<std::ptrdiff_t>(begin),
                     perm_.begin() + static_cast<std::ptrdiff_t>(mid),
                     perm_.begin() + static_cast<std::ptrdiff_t>(end),
                     [&](std::size_t a, std::size_t b) {
                       return key(a) < key(b);
                     });
    const int l = buildTree(pts, begin, mid, opts);
    const int r = buildTree(pts, mid, end, opts);
    clusters_[static_cast<std::size_t>(self)].left = l;
    clusters_[static_cast<std::size_t>(self)].right = r;
  }
  return self;
}

namespace {

/// Implicit view of one matrix block: global row/column index spans into
/// the tree permutation, with row/column sampling routed through the
/// kernel's batch entry points — one virtual call per sampled row/column
/// instead of one per entry.
struct BlockView {
  const EntryKernel* kernel;
  const std::size_t* rows;  // global indices of the block's rows
  const std::size_t* cols;
  std::size_t m, n;

  void row(std::size_t i, Real* out) const {
    kernel->row(rows[i], cols, n, out);
  }
  void column(std::size_t j, Real* out) const {
    kernel->column(cols[j], rows, m, out);
  }
  void fillDense(RMat& a) const {
    a.resize(m, n);
    for (std::size_t i = 0; i < m; ++i) kernel->row(rows[i], cols, n,
                                                    a.rowPtr(i));
  }
};

// Adaptive cross approximation with partial pivoting on an implicitly
// defined m×n block; returns factors U (m×r), V (n×r) with block ≈ U·Vᵀ.
void acaCompress(const BlockView& blk, Real tol, std::size_t maxRank,
                 RMat& uOut, RMat& vOut) {
  const std::size_t m = blk.m, n = blk.n;
  RFIC_REQUIRE(m > 0 && n > 0, "acaCompress: empty block");
  RFIC_REQUIRE(tol > 0, "acaCompress: tolerance must be positive");
  std::vector<RVec> us, vs;
  std::vector<char> rowUsed(m, 0), colUsed(n, 0);
  Real frob2 = 0;  // running ‖S_k‖²_F estimate
  std::size_t pivotRow = 0;

  for (std::size_t k = 0; k < std::min({m, n, maxRank}); ++k) {
    // Residual row at pivotRow.
    RVec row(n);
    blk.row(pivotRow, row.data());
    for (std::size_t p = 0; p < us.size(); ++p)
      for (std::size_t j = 0; j < n; ++j)
        row[j] -= us[p][pivotRow] * vs[p][j];
    // Column pivot.
    std::size_t pj = n;
    Real best = 0;
    for (std::size_t j = 0; j < n; ++j) {
      if (colUsed[j]) continue;
      const Real a = std::abs(row[j]);
      if (a > best) {
        best = a;
        pj = j;
      }
    }
    rowUsed[pivotRow] = 1;
    if (pj == n || best == 0) break;
    colUsed[pj] = 1;

    const Real piv = row[pj];
    RVec v = row;
    v *= 1.0 / piv;
    RVec u(m);
    blk.column(pj, u.data());
    for (std::size_t p = 0; p < us.size(); ++p)
      for (std::size_t i = 0; i < m; ++i) u[i] -= vs[p][pj] * us[p][i];

    const Real nu = numeric::norm2(u), nv = numeric::norm2(v);
    frob2 += nu * nu * nv * nv;
    us.push_back(std::move(u));
    vs.push_back(std::move(v));
    if (nu * nv <= tol * std::sqrt(frob2)) break;

    // Next pivot row: largest unused residual entry of the new column.
    pivotRow = m;
    best = 0;
    for (std::size_t i = 0; i < m; ++i) {
      if (rowUsed[i]) continue;
      const Real a = std::abs(us.back()[i]);
      if (a >= best) {
        best = a;
        pivotRow = i;
      }
    }
    if (pivotRow == m) break;
  }

  const std::size_t r = us.size();
  uOut = RMat(m, r);
  vOut = RMat(n, r);
  for (std::size_t p = 0; p < r; ++p) {
    for (std::size_t i = 0; i < m; ++i) uOut(i, p) = us[p][i];
    for (std::size_t j = 0; j < n; ++j) vOut(j, p) = vs[p][j];
  }
}

// SVD recompression of U·Vᵀ to minimal rank at relative tolerance tol.
void svdRecompress(RMat& u, RMat& v, Real tol) {
  const std::size_t r = u.cols();
  if (r == 0 || u.rows() < r || v.rows() < r) return;
  const numeric::ThinQR qu = numeric::thinQR(u);
  const numeric::ThinQR qv = numeric::thinQR(v);
  // Core = Ru · Rvᵀ (r × r).
  const RMat core = qu.r * qv.r.transposed();
  const numeric::SVD dec = numeric::svd(core);
  const std::size_t keep = numeric::numericalRank(dec, tol);
  if (keep >= r) return;  // nothing gained
  // U ← Qu·Us·diag(s)  (m×keep), V ← Qv·Vs  (n×keep).
  RMat usS(r, keep);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t k = 0; k < keep; ++k) usS(i, k) = dec.u(i, k) * dec.s[k];
  RMat vsK(r, keep);
  for (std::size_t i = 0; i < r; ++i)
    for (std::size_t k = 0; k < keep; ++k) vsK(i, k) = dec.v(i, k);
  u = qu.q * usS;
  v = qv.q * vsK;
}

}  // namespace

void IES3Matrix::planBlocks(const IES3Options& opts,
                            std::vector<BlockTask>& tasks) const {
  // Iterative DFS over the cluster-pair tree, same visit order as the old
  // recursion. Planning touches no matrix entries, so it is cheap; the
  // expensive sampling work lands in the flat task list.
  std::vector<std::pair<std::size_t, std::size_t>> stack{{0, 0}};
  while (!stack.empty()) {
    const auto [rc, cc] = stack.back();
    stack.pop_back();
    const Cluster& a = clusters_[rc];
    const Cluster& b = clusters_[cc];
    const Real dist = clusterDistance(a, b);
    // Admissibility: both clusters separated on the scale of their
    // diameters. The ACA+SVD pass then finds the numerical rank by
    // sampling the actual matrix — the IES³ kernel-independence
    // observation: no multipole expansion and no 1/r assumption involved.
    const Real diam = std::max(a.diameter(), b.diameter());
    if (dist > 0 && diam <= opts.eta * dist) {
      tasks.push_back({rc, cc, true});
      continue;
    }
    const bool aLeaf = a.left < 0, bLeaf = b.left < 0;
    if (aLeaf && bLeaf) {
      tasks.push_back({rc, cc, false});
      continue;
    }
    // Quadtree split: divide both sides when possible so blocks stay
    // roughly square (tall thin blocks compress poorly). Children are
    // pushed in reverse so pop order matches the recursive formulation.
    const auto al = static_cast<std::size_t>(a.left);
    const auto ar = static_cast<std::size_t>(a.right);
    const auto bl = static_cast<std::size_t>(b.left);
    const auto br = static_cast<std::size_t>(b.right);
    if (!aLeaf && !bLeaf) {
      stack.push_back({ar, br});
      stack.push_back({ar, bl});
      stack.push_back({al, br});
      stack.push_back({al, bl});
    } else if (!aLeaf) {
      stack.push_back({ar, cc});
      stack.push_back({al, cc});
    } else {
      stack.push_back({rc, br});
      stack.push_back({rc, bl});
    }
  }
}

void IES3Matrix::buildBlocks(const EntryKernel& kernel,
                             const IES3Options& opts) {
  std::vector<BlockTask> tasks;
  planBlocks(opts, tasks);

  // One output slot per task: blocks are independent, so they compress /
  // fill concurrently, and slot-indexed results keep the final block
  // ordering (and therefore every downstream accumulation) deterministic
  // across thread counts.
  struct Built {
    RMat u, v;  // low-rank factors (admissible tasks)
    RMat a;     // dense leaf (otherwise)
  };
  std::vector<Built> built(tasks.size());
  std::atomic<std::uint64_t> compressNs{0}, denseNs{0};

  struct Ctx {
    IES3Matrix* self;
    const EntryKernel* kernel;
    const IES3Options* opts;
    const std::vector<BlockTask>* tasks;
    std::vector<Built>* built;
    std::atomic<std::uint64_t>* compressNs;
    std::atomic<std::uint64_t>* denseNs;
  } ctx{this, &kernel, &opts, &tasks, &built, &compressNs, &denseNs};

  pool_->parallelFor(tasks.size(), [&ctx](std::size_t ti) {
    const BlockTask& t = (*ctx.tasks)[ti];
    const Cluster& a = ctx.self->clusters_[t.rowCluster];
    const Cluster& b = ctx.self->clusters_[t.colCluster];
    const BlockView view{ctx.kernel, &ctx.self->perm_[a.begin],
                         &ctx.self->perm_[b.begin], a.end - a.begin,
                         b.end - b.begin};
    Built& out = (*ctx.built)[ti];
    perf::Timer timer;
    if (t.admissible) {
      // Sample-and-compress, kernel-independently.
      acaCompress(view, 0.1 * ctx.opts->tolerance, ctx.opts->maxRank, out.u,
                  out.v);
      svdRecompress(out.u, out.v, ctx.opts->tolerance);
      ctx.compressNs->fetch_add(timer.ns(), std::memory_order_relaxed);
    } else {
      view.fillDense(out.a);
      ctx.denseNs->fetch_add(timer.ns(), std::memory_order_relaxed);
    }
  });

  // Serial compaction in task order: deterministic block lists and stats.
  for (std::size_t ti = 0; ti < tasks.size(); ++ti) {
    const BlockTask& t = tasks[ti];
    Built& out = built[ti];
    if (t.admissible) {
      if (out.u.cols() == 0) continue;  // numerically zero block
      const std::size_t rank = out.u.cols();
      storedEntries_ += rank * (out.u.rows() + out.v.rows());
      lowRankBlocks_.push_back(
          {t.rowCluster, t.colCluster, std::move(out.u), std::move(out.v)});
      stats_.rankMax = std::max(stats_.rankMax, rank);
      stats_.rankMean += static_cast<Real>(rank);
      std::size_t bucket = 0;
      while (bucket + 1 < stats_.rankHistogram.size() &&
             (std::size_t{1} << (bucket + 1)) <= rank)
        ++bucket;
      ++stats_.rankHistogram[bucket];
    } else {
      storedEntries_ += out.a.rows() * out.a.cols();
      denseBlocks_.push_back({t.rowCluster, t.colCluster, std::move(out.a)});
    }
  }
  if (!lowRankBlocks_.empty())
    stats_.rankMean /= static_cast<Real>(lowRankBlocks_.size());
  stats_.compressNs = compressNs.load(std::memory_order_relaxed);
  stats_.denseFillNs = denseNs.load(std::memory_order_relaxed);
  stats_.denseBlockCount = denseBlocks_.size();
  stats_.lowRankBlockCount = lowRankBlocks_.size();
  stats_.compressionRatio =
      static_cast<Real>(storedEntries_) /
      (static_cast<Real>(n_) * static_cast<Real>(n_));
}

void IES3Matrix::buildLeafWork() {
  // Leaves in tree order partition [0, n): each phase-2 matvec task owns
  // one leaf's output range, so writes are disjoint and the in-leaf
  // accumulation order is fixed regardless of scheduling.
  std::vector<std::size_t> leafSlot(clusters_.size(), SIZE_MAX);
  for (std::size_t c = 0; c < clusters_.size(); ++c) {
    if (clusters_[c].left >= 0) continue;
    leafSlot[c] = leaves_.size();
    leaves_.push_back(c);
  }
  leafWork_.resize(leaves_.size());
  for (std::size_t l = 0; l < leaves_.size(); ++l) {
    leafWork_[l].begin = clusters_[leaves_[l]].begin;
    leafWork_[l].end = clusters_[leaves_[l]].end;
  }

  // Dense blocks live at leaf×leaf pairs: direct slot lookup.
  for (std::size_t d = 0; d < denseBlocks_.size(); ++d) {
    LeafWork& w = leafWork_[leafSlot[denseBlocks_[d].rowCluster]];
    w.dense.push_back(d);
    w.cost += denseBlocks_[d].a.rows() * denseBlocks_[d].a.cols();
  }
  // A low-rank block's row cluster may be an internal node; its U rows are
  // split across every leaf beneath it. Scratch offsets give each block a
  // private slice for the phase-1 Vᵀx temporary.
  lrOffset_.resize(lowRankBlocks_.size());
  scratchSize_ = 0;
  for (std::size_t k = 0; k < lowRankBlocks_.size(); ++k) {
    lrOffset_[k] = scratchSize_;
    scratchSize_ += lowRankBlocks_[k].u.cols();
    std::vector<std::size_t> stack{lowRankBlocks_[k].rowCluster};
    while (!stack.empty()) {
      const std::size_t c = stack.back();
      stack.pop_back();
      if (clusters_[c].left < 0) {
        LeafWork& w = leafWork_[leafSlot[c]];
        w.lowRank.push_back(k);
        w.cost += (clusters_[c].end - clusters_[c].begin) *
                  lowRankBlocks_[k].u.cols();
      } else {
        stack.push_back(static_cast<std::size_t>(clusters_[c].right));
        stack.push_back(static_cast<std::size_t>(clusters_[c].left));
      }
    }
  }
}

IES3Matrix::IES3Matrix(const std::vector<Vec3>& positions,
                       const EntryKernel& kernel, const IES3Options& opts)
    : n_(positions.size()),
      pool_(opts.pool != nullptr ? opts.pool : &perf::ThreadPool::global()) {
  RFIC_REQUIRE(n_ > 0, "IES3Matrix: empty geometry");
  perf::Timer buildTimer;
  perm_.resize(n_);
  std::iota(perm_.begin(), perm_.end(), std::size_t{0});
  std::vector<Vec3> pts = positions;
  buildTree(pts, 0, n_, opts);
  buildBlocks(kernel, opts);
  buildLeafWork();
  diag_ = RVec(n_);
  for (std::size_t i = 0; i < n_; ++i) diag_[i] = kernel.entry(i, i);
  stats_.buildNs = buildTimer.ns();
  perf::global().addExtractionBuild(stats_.buildNs);
  perf::global().addExtractionCompress(stats_.compressNs);
}

IES3Matrix::IES3Matrix(const std::vector<Vec3>& positions, KernelFn kernel,
                       const IES3Options& opts)
    : IES3Matrix(positions, FunctionKernel(std::move(kernel)), opts) {}

std::unique_ptr<IES3Matrix::Workspace> IES3Matrix::acquireWorkspace() const {
  {
    // rt: allow(rt-lock) uncontended pool handoff — one mutex round-trip
    // per matvec, bounded work under the lock (a vector pop).
    diag::LockGuard lock(wsMu_);
    if (!wsPool_.empty()) {
      auto ws = std::move(wsPool_.back());
      wsPool_.pop_back();
      return ws;
    }
  }
  // Sized to the high-water mark at creation, so a workspace never grows
  // again: steady state recycles pooled instances without touching the
  // allocator, and this counter stays flat.
  wsGrows_.fetch_add(1, std::memory_order_relaxed);
  auto ws = std::make_unique<Workspace>();  // rt: allow(rt-alloc) pool miss
  // only — counted by wsGrows_; the zero-alloc steady-state contract is
  // this counter staying flat (asserted in test_extraction.cpp).
  ws->xt.resize(n_);            // rt: allow(rt-alloc) pool-miss sizing
  ws->yt.resize(n_);            // rt: allow(rt-alloc) pool-miss sizing
  ws->scratch.resize(scratchSize_);  // rt: allow(rt-alloc) pool-miss sizing
  // Memory budget: one pool miss = one workspace allocation, charged
  // against the owning job's account (no-op outside a budgeted job).
  diag::memCharge((2 * n_ + scratchSize_) * sizeof(Real));
  return ws;
}

void IES3Matrix::releaseWorkspace(std::unique_ptr<Workspace> ws) const {
  // rt: allow(rt-lock) uncontended pool handoff (see acquireWorkspace)
  diag::LockGuard lock(wsMu_);
  wsPool_.push_back(std::move(ws));  // rt: allow(rt-alloc) returns a pooled
  // slot popped by acquireWorkspace — capacity was established there
}

RFIC_REALTIME void IES3Matrix::apply(const RVec& x, RVec& y) const {
  RFIC_REQUIRE(x.size() == n_, "IES3Matrix::apply size mismatch");
  perf::Timer timer;
  std::unique_ptr<Workspace> ws = acquireWorkspace();
  RVec& xt = ws->xt;
  for (std::size_t t = 0; t < n_; ++t) xt[t] = x[perm_[t]];

  struct Ctx {
    const IES3Matrix* self;
    Workspace* ws;
  } ctx{this, ws.get()};

  // Phase 1: per-block temporaries t_k = V_kᵀ·x into private scratch
  // slices — independent blocks, disjoint writes.
  pool_->parallelFor(
      lowRankBlocks_.size(),
      [&ctx](std::size_t k) {
        const LowRankBlock& blk = ctx.self->lowRankBlocks_[k];
        const Cluster& b = ctx.self->clusters_[blk.colCluster];
        const std::size_t n = b.end - b.begin;
        const std::size_t r = blk.u.cols();
        const Real* xs = ctx.ws->xt.data() + b.begin;
        Real* t = ctx.ws->scratch.data() + ctx.self->lrOffset_[k];
        for (std::size_t c = 0; c < r; ++c) t[c] = 0;
        for (std::size_t j = 0; j < n; ++j) {
          const Real xj = xs[j];
          if (xj == 0) continue;
          const Real* vrow = blk.v.rowPtr(j);
          for (std::size_t c = 0; c < r; ++c) t[c] += vrow[c] * xj;
        }
      },
      1);

  // Phase 2: per-leaf row accumulation. Leaves partition the output, so
  // writes are disjoint; each leaf folds its dense blocks and the U-row
  // slices of covering low-rank blocks in a fixed order, making the
  // result bitwise independent of the thread count.
  pool_->parallelFor(
      leafWork_.size(),
      [&ctx](std::size_t l) {
        const LeafWork& w = ctx.self->leafWork_[l];
        Real* out = ctx.ws->yt.data() + w.begin;
        const std::size_t rows = w.end - w.begin;
        for (std::size_t i = 0; i < rows; ++i) out[i] = 0;
        for (const std::size_t d : w.dense) {
          const DenseBlock& blk = ctx.self->denseBlocks_[d];
          const Cluster& b = ctx.self->clusters_[blk.colCluster];
          const std::size_t n = b.end - b.begin;
          const Real* xs = ctx.ws->xt.data() + b.begin;
          for (std::size_t i = 0; i < rows; ++i) {
            const Real* row = blk.a.rowPtr(i);
            Real s = 0;
            for (std::size_t j = 0; j < n; ++j) s += row[j] * xs[j];
            out[i] += s;
          }
        }
        for (const std::size_t k : w.lowRank) {
          const LowRankBlock& blk = ctx.self->lowRankBlocks_[k];
          const std::size_t rowBegin =
              ctx.self->clusters_[blk.rowCluster].begin;
          const std::size_t r = blk.u.cols();
          const Real* t = ctx.ws->scratch.data() + ctx.self->lrOffset_[k];
          for (std::size_t i = 0; i < rows; ++i) {
            const Real* urow = blk.u.rowPtr(w.begin - rowBegin + i);
            Real s = 0;
            for (std::size_t c = 0; c < r; ++c) s += urow[c] * t[c];
            out[i] += s;
          }
        }
      },
      1);

  y.resize(n_);  // rt: allow(rt-alloc) no-op once the caller's vector is
                 // sized; first call per RHS establishes capacity
  for (std::size_t t = 0; t < n_; ++t) y[perm_[t]] = ws->yt[t];
  releaseWorkspace(std::move(ws));
  matvecs_.fetch_add(1, std::memory_order_relaxed);
  const std::uint64_t ns = timer.ns();
  matvecNs_.fetch_add(ns, std::memory_order_relaxed);
  perf::global().addMatvec(ns);
}

namespace {

// Block-Jacobi over the diagonal leaf blocks. Self-contained: owns a copy
// of the tree permutation and the LU factors, so it remains valid if the
// matrix that created it is destroyed. apply() recycles pooled workspaces
// and solves each diagonal segment in place — no steady-state allocation.
class BlockJacobiPrec final : public sparse::LinearOperator<Real> {
 public:
  BlockJacobiPrec(std::size_t n, std::vector<std::size_t> perm,
                  std::vector<std::pair<std::size_t, std::size_t>> ranges,
                  std::vector<numeric::LU<Real>> lus, perf::ThreadPool* pool)
      : n_(n),
        perm_(std::move(perm)),
        ranges_(std::move(ranges)),
        lus_(std::move(lus)),
        pool_(pool) {}

  std::size_t dim() const override { return n_; }
  RFIC_REALTIME void apply(const RVec& x, RVec& y) const override {
    std::unique_ptr<RVec> ws = acquire();
    RVec& yt = *ws;
    // Identity action outside the diagonal blocks (the leaf ranges cover
    // [0, n), so in practice every entry is overwritten below).
    for (std::size_t t = 0; t < n_; ++t) yt[t] = x[perm_[t]];
    struct Ctx {
      const BlockJacobiPrec* self;
      RVec* yt;
    } ctx{this, &yt};
    pool_->parallelFor(
        ranges_.size(),
        [&ctx](std::size_t b) {
          const auto [lo, hi] = ctx.self->ranges_[b];
          (void)hi;
          ctx.self->lus_[b].solveInPlace(ctx.yt->data() + lo);
        },
        1);
    y.resize(n_);  // rt: allow(rt-alloc) no-op once the caller's vector is
                   // sized; first call per RHS establishes capacity
    for (std::size_t t = 0; t < n_; ++t) y[perm_[t]] = yt[t];
    release(std::move(ws));
  }

 private:
  std::unique_ptr<RVec> acquire() const RFIC_EXCLUDES(mu_) {
    {
      // rt: allow(rt-lock) uncontended pool handoff, bounded critical section
      diag::LockGuard lock(mu_);
      if (!pool_ws_.empty()) {
        auto ws = std::move(pool_ws_.back());
        pool_ws_.pop_back();
        return ws;
      }
    }
    return std::make_unique<RVec>(n_);  // rt: allow(rt-alloc) pool miss only;
    // steady state recycles — same contract as IES3Matrix::acquireWorkspace
  }
  void release(std::unique_ptr<RVec> ws) const RFIC_EXCLUDES(mu_) {
    // rt: allow(rt-lock) uncontended pool handoff, bounded critical section
    diag::LockGuard lock(mu_);
    pool_ws_.push_back(std::move(ws));  // rt: allow(rt-alloc) returns a
    // pooled slot popped by acquire — capacity was established there
  }

  std::size_t n_;
  std::vector<std::size_t> perm_;
  std::vector<std::pair<std::size_t, std::size_t>> ranges_;
  std::vector<numeric::LU<Real>> lus_;
  perf::ThreadPool* pool_;
  mutable diag::Mutex mu_;
  mutable std::vector<std::unique_ptr<RVec>> pool_ws_ RFIC_GUARDED_BY(mu_);
};

class DiagPrec final : public sparse::LinearOperator<Real> {
 public:
  explicit DiagPrec(const RVec& d) : inv_(d.size()) {
    for (std::size_t i = 0; i < d.size(); ++i)
      inv_[i] = d[i] != 0 ? 1.0 / d[i] : 1.0;
  }
  std::size_t dim() const override { return inv_.size(); }
  void apply(const RVec& x, RVec& y) const override {
    y.resize(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = inv_[i] * x[i];
  }

 private:
  RVec inv_;
};

}  // namespace

std::unique_ptr<sparse::LinearOperator<Real>> IES3Matrix::makeBlockJacobi()
    const {
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  std::vector<const DenseBlock*> diagBlocks;
  for (const auto& blk : denseBlocks_) {
    if (blk.rowCluster != blk.colCluster) continue;
    const Cluster& c = clusters_[blk.rowCluster];
    ranges.emplace_back(c.begin, c.end);
    diagBlocks.push_back(&blk);
  }
  // Factor the independent diagonal blocks concurrently, slot per block.
  std::vector<numeric::LU<Real>> lus(diagBlocks.size());
  struct Ctx {
    const std::vector<const DenseBlock*>* blocks;
    std::vector<numeric::LU<Real>>* lus;
  } ctx{&diagBlocks, &lus};
  pool_->parallelFor(
      diagBlocks.size(),
      [&ctx](std::size_t b) {
        (*ctx.lus)[b] = numeric::LU<Real>((*ctx.blocks)[b]->a);
      },
      1);
  return std::make_unique<BlockJacobiPrec>(n_, perm_, std::move(ranges),
                                           std::move(lus), pool_);
}

IES3CapacitanceResult extractCapacitanceIES3(const PanelMesh& mesh,
                                             const IES3Options& opts) {
  const std::size_t n = mesh.panels.size();
  const std::size_t nc = mesh.numConductors();
  RFIC_REQUIRE(n > 0 && nc > 0, "extractCapacitanceIES3: empty mesh");
  perf::ThreadPool& pool =
      opts.pool != nullptr ? *opts.pool : perf::ThreadPool::global();

  const PanelPotentialKernel kernel(mesh);
  std::vector<Vec3> pos(n);
  for (std::size_t i = 0; i < n; ++i) pos[i] = kernel.centroid(i);
  const IES3Matrix a(pos, kernel, opts);

  IES3CapacitanceResult out;
  out.panelCount = n;
  out.storedEntries = a.storedEntries();
  out.buildStats = a.buildStats();
  out.matrix = RMat(nc, nc);

  const auto prec = a.makeBlockJacobi();
  sparse::IterativeOptions io;
  io.tolerance = 1e-8;
  io.maxIterations = 1000;
  io.restart = 120;

  perf::Timer solveTimer;
  std::vector<RVec> qs(nc, RVec(n));
  std::vector<sparse::IterativeResult> sts(nc);
  auto solveOne = [&](std::size_t k, sparse::GmresWorkspace<Real>& ws,
                      RVec& v) {
    for (std::size_t i = 0; i < n; ++i)
      v[i] = (mesh.panels[i].conductor == static_cast<int>(k)) ? 1.0 : 0.0;
    sts[k] = sparse::gmres(a, v, qs[k], prec.get(), io, &ws);
  };

  if (opts.warmStart) {
    // Serial chain: conductor k starts from conductor k-1's charges. One
    // workspace serves every solve.
    sparse::GmresWorkspace<Real> ws;
    RVec v(n);
    for (std::size_t k = 0; k < nc; ++k) {
      if (k > 0) qs[k] = qs[k - 1];
      solveOne(k, ws, v);
    }
  } else {
    // Concurrent multi-RHS sweep: the nc solves share the operator and
    // preconditioner (both reentrant via pooled workspaces) and differ
    // only in rhs; per-conductor GMRES workspaces keep repeat iterations
    // allocation-free. Zero initial guesses keep each solve's arithmetic
    // identical whatever the thread count.
    std::vector<sparse::GmresWorkspace<Real>> wss(nc);
    std::vector<RVec> vs(nc, RVec(n));
    pool.parallelFor(
        nc, [&](std::size_t k) { solveOne(k, wss[k], vs[k]); }, 1);
  }
  out.solveNs = solveTimer.ns();
  out.matvecs = a.matvecCount();

  for (std::size_t k = 0; k < nc; ++k) {
    if (!sts[k].converged)
      failNumerical("extractCapacitanceIES3: GMRES failed to converge");
    out.gmresIterations += sts[k].iterations;
    const RVec& q = qs[k];
    for (std::size_t i = 0; i < n; ++i)
      out.matrix(static_cast<std::size_t>(mesh.panels[i].conductor), k) +=
          q[i];
  }
  return out;
}

}  // namespace rfic::extraction
