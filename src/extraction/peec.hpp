// Magnetoquasistatic PEEC extraction: partial self- and mutual inductances
// of rectangular conductor segments, plus frequency-dependent series
// resistance with a skin-effect correction.
//
// Substitution note (DESIGN.md §1.4): the paper's full-wave layered-media
// solver is replaced by quasi-static partial-element extraction — at chip
// scale and 1–2 GHz (features ≪ λ/10) this is the governing regime, and
// the compression/solution machinery is shared with the electrostatic path.
#pragma once

#include <vector>

#include "extraction/geometry.hpp"
#include "numeric/dense.hpp"

namespace rfic::extraction {

inline constexpr Real kMu0 = 4.0e-7 * kPi;

/// Straight rectangular conductor segment along a coordinate axis.
struct Segment {
  Vec3 start, end;
  Real width = 0, thickness = 0;
  /// +1/−1: current direction along the segment axis relative to the
  /// netlist orientation (used to sign mutual terms in a series loop).
  int sign = 1;
};

/// Grover/Ruehli closed-form partial self-inductance of a rectangular bar.
Real partialSelfInductance(const Segment& s);

/// Partial mutual inductance of two segments by Gauss–Legendre quadrature
/// of the Neumann double integral along the segment center lines
/// (filament approximation). Perpendicular segments return 0 exactly.
Real partialMutualInductance(const Segment& a, const Segment& b,
                             std::size_t quadraturePoints = 12);

/// Total series inductance of segments carrying the same loop current:
/// L = Σᵢⱼ signᵢ·signⱼ·M(i,j).
Real loopInductance(const std::vector<Segment>& segs);

/// DC resistance of a segment: ρ·l/(w·t).
Real segmentResistanceDC(const Segment& s, Real resistivity);

/// Skin-effect multiplier at frequency f for conductor thickness t:
/// R(f)/Rdc = t/(δ·(1 − e^{−t/δ})), δ = √(ρ/(π f μ₀)); → 1 at low f.
Real skinEffectFactor(Real freqHz, Real thickness, Real resistivity);

}  // namespace rfic::extraction
