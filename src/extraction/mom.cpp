#include "extraction/mom.hpp"

#include <array>
#include <cmath>
#include <numeric>

#include "extraction/panel_kernel.hpp"
#include "numeric/lu.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/krylov.hpp"
#include "sparse/sparse_matrix.hpp"

namespace rfic::extraction {

RMat assembleMoMMatrix(const PanelMesh& mesh) {
  const std::size_t n = mesh.panels.size();
  RMat p(n, n);
  // Batched fill through the cached-frame kernel: one task per target row,
  // written contiguously via rowPtr (disjoint writes, no synchronization).
  const PanelPotentialKernel kernel(mesh);
  std::vector<std::size_t> cols(n);
  std::iota(cols.begin(), cols.end(), std::size_t{0});
  struct Ctx {
    const PanelPotentialKernel* kernel;
    const std::size_t* cols;
    std::size_t n;
    RMat* p;
  } ctx{&kernel, cols.data(), n, &p};
  perf::ThreadPool::global().parallelFor(n, [&ctx](std::size_t i) {
    ctx.kernel->row(i, ctx.cols, ctx.n, ctx.p->rowPtr(i));
  });
  return p;
}

CapacitanceResult extractCapacitanceDense(const PanelMesh& mesh) {
  const std::size_t n = mesh.panels.size();
  const std::size_t nc = mesh.numConductors();
  RFIC_REQUIRE(n > 0 && nc > 0, "extractCapacitanceDense: empty mesh");

  CapacitanceResult out;
  out.panelCount = n;
  out.matrix = RMat(nc, nc);

  perf::Timer factorTimer;
  const numeric::LU<Real> lu(assembleMoMMatrix(mesh));
  perf::global().addFactorization(factorTimer.ns());

  // All nc unit-voltage excitations against the one factorization.
  RMat v(n, nc);
  for (std::size_t i = 0; i < n; ++i)
    v(i, static_cast<std::size_t>(mesh.panels[i].conductor)) = 1.0;
  perf::Timer solveTimer;
  const RMat q = lu.solve(v);
  perf::global().addSolve(solveTimer.ns());

  out.charges = RVec(n);
  for (std::size_t i = 0; i < n; ++i) {
    out.charges[i] = q(i, 0);
    const auto ci = static_cast<std::size_t>(mesh.panels[i].conductor);
    for (std::size_t k = 0; k < nc; ++k) out.matrix(ci, k) += q(i, k);
  }
  return out;
}

Real parallelPlateEstimate(Real side, Real gap) {
  return kEps0 * side * side / gap;
}

FDLaplaceResult solveParallelPlatesFD(Real side, Real gap, std::size_t n) {
  RFIC_REQUIRE(n >= 8, "solveParallelPlatesFD: grid too coarse");
  // Domain: [0, 2·side]² × [0, 3·gap]; plates of size `side` centered in
  // x-y at z = gap and z = 2·gap; box boundary grounded.
  const Real lx = 2.0 * side, lz = 3.0 * gap;
  const std::size_t nx = n, ny = n;
  const Real h = lx / static_cast<Real>(nx - 1);
  const std::size_t nz = std::max<std::size_t>(
      7, static_cast<std::size_t>(std::lround(lz / h)) + 1);
  const Real hz = lz / static_cast<Real>(nz - 1);

  auto idx = [&](std::size_t i, std::size_t j, std::size_t k) {
    return (k * ny + j) * nx + i;
  };
  const std::size_t total = nx * ny * nz;

  // Classify nodes: -1 free, 0 grounded Dirichlet, 1 plate at 1 V.
  std::vector<int> kind(total, -1);
  const std::size_t kPlateLo =
      static_cast<std::size_t>(std::lround(gap / hz));
  const std::size_t kPlateHi =
      static_cast<std::size_t>(std::lround(2.0 * gap / hz));
  const Real x0 = 0.5 * side, x1 = 1.5 * side;
  for (std::size_t k = 0; k < nz; ++k) {
    for (std::size_t j = 0; j < ny; ++j) {
      for (std::size_t i = 0; i < nx; ++i) {
        if (i == 0 || j == 0 || k == 0 || i == nx - 1 || j == ny - 1 ||
            k == nz - 1) {
          kind[idx(i, j, k)] = 0;
          continue;
        }
        const Real x = static_cast<Real>(i) * h;
        const Real y = static_cast<Real>(j) * h;
        const bool inFootprint = x >= x0 && x <= x1 && y >= x0 && y <= x1;
        if (inFootprint && k == kPlateHi) kind[idx(i, j, k)] = 1;
        else if (inFootprint && k == kPlateLo) kind[idx(i, j, k)] = 2;
      }
    }
  }

  // Free-node numbering.
  std::vector<std::size_t> number(total, SIZE_MAX);
  std::size_t nFree = 0;
  for (std::size_t t = 0; t < total; ++t)
    if (kind[t] == -1) number[t] = nFree++;

  // 7-point Laplacian with anisotropic spacing: coefficients 1/h² per x/y
  // neighbor, 1/hz² per z neighbor.
  const Real cxy = 1.0 / (h * h), cz = 1.0 / (hz * hz);
  sparse::RTriplets a(nFree, nFree);
  numeric::RVec rhs(nFree, 0.0);
  for (std::size_t k = 1; k + 1 < nz; ++k) {
    for (std::size_t j = 1; j + 1 < ny; ++j) {
      for (std::size_t i = 1; i + 1 < nx; ++i) {
        const std::size_t t = idx(i, j, k);
        if (kind[t] != -1) continue;
        const std::size_t row = number[t];
        const std::array<std::pair<std::size_t, Real>, 6> nbs{{
            {idx(i - 1, j, k), cxy},
            {idx(i + 1, j, k), cxy},
            {idx(i, j - 1, k), cxy},
            {idx(i, j + 1, k), cxy},
            {idx(i, j, k - 1), cz},
            {idx(i, j, k + 1), cz},
        }};
        Real diag = 0;
        for (const auto& [nb, c] : nbs) {
          diag += c;
          if (kind[nb] == -1)
            a.add(row, number[nb], -c);
          else if (kind[nb] == 1)
            rhs[row] += c;  // 1 V Dirichlet neighbor
        }  // kinds 0 and 2 are grounded Dirichlet: no RHS term
        a.add(row, row, diag);
      }
    }
  }

  const sparse::RCSR csr(a);
  sparse::CSROperator<Real> op(csr);
  numeric::RVec phiFree(nFree, 0.0);
  sparse::IterativeOptions io;
  io.tolerance = 1e-10;
  io.maxIterations = 20000;
  const auto st = sparse::conjugateGradient(op, rhs, phiFree, io);
  if (!st.converged)
    failNumerical("solveParallelPlatesFD: CG failed to converge");

  // Flux out of the 1 V plate: Q = ε₀ Σ over plate-adjacent links of
  // (1 − φ_neighbor)·(link area / link spacing).
  auto phiAt = [&](std::size_t t) -> Real {
    if (kind[t] == -1) return phiFree[number[t]];
    return kind[t] == 1 ? 1.0 : 0.0;
  };
  // Induced charge on the grounded plate — the mutual capacitance, directly
  // comparable to −C01 from the MoM solve (box-wall coupling excluded).
  Real q = 0;
  for (std::size_t k = 1; k + 1 < nz; ++k) {
    for (std::size_t j = 1; j + 1 < ny; ++j) {
      for (std::size_t i = 1; i + 1 < nx; ++i) {
        const std::size_t t = idx(i, j, k);
        if (kind[t] != 2) continue;
        const std::array<std::pair<std::size_t, Real>, 6> nbs{{
            {idx(i - 1, j, k), h * hz / h},
            {idx(i + 1, j, k), h * hz / h},
            {idx(i, j - 1, k), h * hz / h},
            {idx(i, j + 1, k), h * hz / h},
            {idx(i, j, k - 1), h * h / hz},
            {idx(i, j, k + 1), h * h / hz},
        }};
        for (const auto& [nb, w] : nbs) {
          if (kind[nb] == 2) continue;  // internal plate link
          q += kEps0 * w * phiAt(nb);
        }
      }
    }
  }

  FDLaplaceResult res;
  res.unknowns = nFree;
  res.nnz = csr.nnz();
  res.cgIterations = st.iterations;
  res.capacitance = q;
  return res;
}

Real symmetricConditionEstimate(const numeric::RMat& a, std::size_t iters) {
  RFIC_REQUIRE(a.rows() == a.cols() && a.rows() > 1,
               "symmetricConditionEstimate: square matrix required");
  const std::size_t n = a.rows();
  // Power iteration for |λ|max.
  RVec v(n, 1.0);
  Real lmax = 0;
  for (std::size_t it = 0; it < iters; ++it) {
    RVec w = a * v;
    lmax = numeric::norm2(w);
    if (lmax == 0) break;
    v = w;
    v *= 1.0 / lmax;
  }
  // Inverse power iteration for |λ|min.
  const numeric::LU<Real> lu(a);
  RVec u(n);
  for (std::size_t i = 0; i < n; ++i) u[i] = (i % 2 == 0) ? 1.0 : -0.5;
  Real inv = 0;
  for (std::size_t it = 0; it < iters; ++it) {
    RVec w = lu.solve(u);
    inv = numeric::norm2(w);
    if (inv == 0) break;
    u = w;
    u *= 1.0 / inv;
  }
  const Real lmin = inv > 0 ? 1.0 / inv : 0.0;
  return lmin > 0 ? lmax / lmin : 0.0;
}

}  // namespace rfic::extraction
