#include "extraction/panel_kernel.hpp"

#include <cmath>

namespace rfic::extraction {

namespace {

// Stable log(v + r) where r = sqrt(u² + v² + z²): for v < 0 use the
// identity v + r = (u² + z²)/(r − v) to avoid catastrophic cancellation.
Real stableLogVR(Real v, Real r, Real u2z2) {
  if (v >= 0) return std::log(v + r);
  const Real denom = r - v;
  if (u2z2 <= 0 || denom <= 0) return -700.0;  // point on the edge line
  return std::log(u2z2 / denom);
}

// Indefinite integral I(u,v) of 1/sqrt(u²+v²+z²) du dv:
//   I = u·ln(v+r) + v·ln(u+r) − z·atan2(u·v, z·r)
Real cornerTerm(Real u, Real v, Real z) {
  const Real r = std::sqrt(u * u + v * v + z * z);
  Real s = 0;
  if (u != 0) s += u * stableLogVR(v, r, u * u + z * z);
  if (v != 0) s += v * stableLogVR(u, r, v * v + z * z);
  if (z != 0) s -= z * std::atan2(u * v, z * r);
  return s;
}

}  // namespace

Real panelPotential(const Panel& panel, const Vec3& point) {
  const Real la = panel.edgeA.norm();
  const Real lb = panel.edgeB.norm();
  RFIC_REQUIRE(la > 0 && lb > 0, "panelPotential: degenerate panel");
  const Vec3 ea = panel.edgeA * (1.0 / la);
  const Vec3 eb = panel.edgeB * (1.0 / lb);
  const Vec3 en = ea.cross(eb);

  const Vec3 d = point - panel.corner;
  const Real x = d.dot(ea);
  const Real y = d.dot(eb);
  // The potential is even in the normal offset; folding to z ≥ 0 keeps the
  // atan2 term on its principal branch.
  const Real z = std::abs(d.dot(en));

  // ∫₀^la ∫₀^lb dx'dy'/|r−r'| = Σ± I(x−x', y−y', z) at the four corners.
  const Real u1 = x - la, u2 = x;
  const Real v1 = y - lb, v2 = y;
  const Real integral = cornerTerm(u2, v2, z) - cornerTerm(u1, v2, z) -
                        cornerTerm(u2, v1, z) + cornerTerm(u1, v1, z);
  // Unit total charge → density 1/(la·lb).
  return integral / (4.0 * kPi * kEps0 * la * lb);
}

Real panelPotentialAtCentroid(const Panel& source, const Panel& target) {
  return panelPotential(source, target.centroid());
}

}  // namespace rfic::extraction
