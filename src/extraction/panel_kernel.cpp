#include "extraction/panel_kernel.hpp"

#include <cmath>

namespace rfic::extraction {

namespace {

// Stable log(v + r) where r = sqrt(u² + v² + z²): for v < 0 use the
// identity v + r = (u² + z²)/(r − v) to avoid catastrophic cancellation.
Real stableLogVR(Real v, Real r, Real u2z2) {
  if (v >= 0) return std::log(v + r);
  const Real denom = r - v;
  if (u2z2 <= 0 || denom <= 0) return -700.0;  // point on the edge line
  return std::log(u2z2 / denom);
}

// Indefinite integral I(u,v) of 1/sqrt(u²+v²+z²) du dv:
//   I = u·ln(v+r) + v·ln(u+r) − z·atan2(u·v, z·r)
Real cornerTerm(Real u, Real v, Real z) {
  const Real r = std::sqrt(u * u + v * v + z * z);
  Real s = 0;
  if (u != 0) s += u * stableLogVR(v, r, u * u + z * z);
  if (v != 0) s += v * stableLogVR(u, r, v * v + z * z);
  if (z != 0) s -= z * std::atan2(u * v, z * r);
  return s;
}

}  // namespace

PanelFrame makePanelFrame(const Panel& panel) {
  PanelFrame f;
  f.la = panel.edgeA.norm();
  f.lb = panel.edgeB.norm();
  RFIC_REQUIRE(f.la > 0 && f.lb > 0, "panelPotential: degenerate panel");
  f.corner = panel.corner;
  f.ea = panel.edgeA * (1.0 / f.la);
  f.eb = panel.edgeB * (1.0 / f.lb);
  f.en = f.ea.cross(f.eb);
  // Unit total charge → density 1/(la·lb).
  f.scale = 1.0 / (4.0 * kPi * kEps0 * f.la * f.lb);
  return f;
}

Real panelPotential(const PanelFrame& f, const Vec3& point) {
  const Vec3 d = point - f.corner;
  const Real x = d.dot(f.ea);
  const Real y = d.dot(f.eb);
  // The potential is even in the normal offset; folding to z ≥ 0 keeps the
  // atan2 term on its principal branch.
  const Real z = std::abs(d.dot(f.en));

  // ∫₀^la ∫₀^lb dx'dy'/|r−r'| = Σ± I(x−x', y−y', z) at the four corners.
  const Real u1 = x - f.la, u2 = x;
  const Real v1 = y - f.lb, v2 = y;
  const Real integral = cornerTerm(u2, v2, z) - cornerTerm(u1, v2, z) -
                        cornerTerm(u2, v1, z) + cornerTerm(u1, v1, z);
  return integral * f.scale;
}

Real panelPotential(const Panel& panel, const Vec3& point) {
  return panelPotential(makePanelFrame(panel), point);
}

Real panelPotentialAtCentroid(const Panel& source, const Panel& target) {
  return panelPotential(source, target.centroid());
}

PanelPotentialKernel::PanelPotentialKernel(const PanelMesh& mesh) {
  const std::size_t n = mesh.panels.size();
  frames_.reserve(n);
  centroids_.reserve(n);
  for (const Panel& p : mesh.panels) {
    frames_.push_back(makePanelFrame(p));
    centroids_.push_back(p.centroid());
  }
}

void PanelPotentialKernel::row(std::size_t i, const std::size_t* cols,
                               std::size_t n, Real* out) const {
  const Vec3& target = centroids_[i];
  for (std::size_t t = 0; t < n; ++t)
    out[t] = panelPotential(frames_[cols[t]], target);
}

void PanelPotentialKernel::column(std::size_t j, const std::size_t* rows,
                                  std::size_t m, Real* out) const {
  const PanelFrame& frame = frames_[j];
  for (std::size_t t = 0; t < m; ++t)
    out[t] = panelPotential(frame, centroids_[rows[t]]);
}

}  // namespace rfic::extraction
