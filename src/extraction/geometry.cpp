#include "extraction/geometry.hpp"

#include <cmath>

namespace rfic::extraction {

Real Vec3::norm() const { return std::sqrt(x * x + y * y + z * z); }

Vec3 Vec3::normalized() const {
  const Real n = norm();
  RFIC_REQUIRE(n > 0, "Vec3::normalized: zero vector");
  return {x / n, y / n, z / n};
}

int PanelMesh::addConductor(std::string name) {
  conductorNames.push_back(std::move(name));
  return static_cast<int>(conductorNames.size()) - 1;
}

void addRectangle(PanelMesh& mesh, int cond, const Vec3& corner,
                  const Vec3& edgeA, const Vec3& edgeB, std::size_t nx,
                  std::size_t ny) {
  RFIC_REQUIRE(nx >= 1 && ny >= 1, "addRectangle: bad subdivision");
  const Vec3 da = edgeA * (1.0 / static_cast<Real>(nx));
  const Vec3 db = edgeB * (1.0 / static_cast<Real>(ny));
  for (std::size_t i = 0; i < nx; ++i) {
    for (std::size_t j = 0; j < ny; ++j) {
      Panel p;
      p.corner = corner + da * static_cast<Real>(i) + db * static_cast<Real>(j);
      p.edgeA = da;
      p.edgeB = db;
      p.conductor = cond;
      mesh.panels.push_back(p);
    }
  }
}

PanelMesh makeParallelPlates(Real side, Real gap, std::size_t n) {
  PanelMesh mesh;
  const int c0 = mesh.addConductor("bottom");
  const int c1 = mesh.addConductor("top");
  addRectangle(mesh, c0, {0, 0, 0}, {side, 0, 0}, {0, side, 0}, n, n);
  addRectangle(mesh, c1, {0, 0, gap}, {side, 0, 0}, {0, side, 0}, n, n);
  return mesh;
}

PanelMesh makeCube(Real side, std::size_t n) {
  PanelMesh mesh;
  const int c = mesh.addConductor("cube");
  const Real a = side;
  addRectangle(mesh, c, {0, 0, 0}, {a, 0, 0}, {0, a, 0}, n, n);  // bottom
  addRectangle(mesh, c, {0, 0, a}, {a, 0, 0}, {0, a, 0}, n, n);  // top
  addRectangle(mesh, c, {0, 0, 0}, {a, 0, 0}, {0, 0, a}, n, n);  // front
  addRectangle(mesh, c, {0, a, 0}, {a, 0, 0}, {0, 0, a}, n, n);  // back
  addRectangle(mesh, c, {0, 0, 0}, {0, a, 0}, {0, 0, a}, n, n);  // left
  addRectangle(mesh, c, {a, 0, 0}, {0, a, 0}, {0, 0, a}, n, n);  // right
  return mesh;
}

PanelMesh makeBusCrossing(std::size_t count, Real width, Real pitch,
                          Real length, Real layerGap,
                          std::size_t panelsAlong) {
  PanelMesh mesh;
  for (std::size_t k = 0; k < count; ++k) {
    const int c = mesh.addConductor("mx" + std::to_string(k));
    const Real y0 = static_cast<Real>(k) * pitch;
    addRectangle(mesh, c, {0, y0, 0}, {length, 0, 0}, {0, width, 0},
                 panelsAlong, 1);
  }
  for (std::size_t k = 0; k < count; ++k) {
    const int c = mesh.addConductor("my" + std::to_string(k));
    const Real x0 = static_cast<Real>(k) * pitch;
    addRectangle(mesh, c, {x0, 0, layerGap}, {width, 0, 0}, {0, length, 0}, 1,
                 panelsAlong);
  }
  return mesh;
}

PanelMesh makeResonatorAssembly(std::size_t n) {
  PanelMesh mesh;
  // Millimeter-scale assembly: ground plate 10 × 10 mm, two resonator
  // plates 3 × 3 mm at height 1 mm, and a narrow 4 × 0.5 mm coupling line
  // between them at height 1.5 mm.
  const Real s = 1e-3;  // mm → m
  const int g = mesh.addConductor("ground");
  addRectangle(mesh, g, {0, 0, 0}, {10 * s, 0, 0}, {0, 10 * s, 0}, 2 * n,
               2 * n);
  const int r1 = mesh.addConductor("res1");
  addRectangle(mesh, r1, {1 * s, 3.5 * s, 1 * s}, {3 * s, 0, 0},
               {0, 3 * s, 0}, n, n);
  const int r2 = mesh.addConductor("res2");
  addRectangle(mesh, r2, {6 * s, 3.5 * s, 1 * s}, {3 * s, 0, 0},
               {0, 3 * s, 0}, n, n);
  const int ln = mesh.addConductor("coupler");
  addRectangle(mesh, ln, {3 * s, 4.75 * s, 1.5 * s}, {4 * s, 0, 0},
               {0, 0.5 * s, 0}, std::max<std::size_t>(2, 2 * n), 1);
  return mesh;
}

}  // namespace rfic::extraction
