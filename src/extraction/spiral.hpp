// Square spiral inductor macromodel over a lossy substrate — the Fig. 7
// structure: PEEC series inductance/resistance plus an oxide/substrate
// shunt network, yielding L(f) and Q(f) for the simulation-vs-measurement
// comparison.
#pragma once

#include <vector>

#include "extraction/peec.hpp"

namespace rfic::extraction {

struct SpiralParams {
  std::size_t turns = 4;
  Real outerSize = 300e-6;     ///< outer dimension [m]
  Real width = 12e-6;          ///< trace width [m]
  Real spacing = 3e-6;         ///< turn-to-turn spacing [m]
  Real thickness = 1e-6;       ///< metal thickness [m]
  Real resistivity = 2.65e-8;  ///< metal resistivity [Ω·m] (aluminum)
  Real oxideThickness = 1e-6;  ///< metal-to-substrate oxide [m]
  Real oxideEps = 3.9;
  Real subResistivity = 0.05;  ///< lossy silicon [Ω·m]
  Real subThickness = 300e-6;
  Real subEps = 11.9;
  /// Discretization refinement: 1 for the production model, larger for the
  /// fine reference used as the synthetic "measurement".
  std::size_t segmentsPerSide = 1;
  std::size_t quadraturePoints = 12;
};

/// Segment geometry of the spiral trace (current direction encoded in the
/// segment orientation; mutual-inductance signs follow automatically).
std::vector<Segment> makeSquareSpiral(const SpiralParams& p);

/// One-port π-macromodel of the spiral over the substrate.
struct SpiralModel {
  Real seriesL = 0;    ///< PEEC loop inductance [H]
  Real seriesRdc = 0;  ///< total DC resistance [Ω]
  Real cox = 0;        ///< total oxide capacitance [F]
  Real rsub = 0;       ///< substrate spreading resistance [Ω]
  Real csub = 0;       ///< substrate capacitance [F]
  Real thickness = 0, resistivity = 0;

  /// Input impedance with the far port grounded.
  Complex inputImpedance(Real freqHz) const;
  /// Effective inductance Im(Z)/ω [H].
  Real effectiveInductance(Real freqHz) const;
  /// Quality factor Im(Z)/Re(Z).
  Real qualityFactor(Real freqHz) const;
};

SpiralModel buildSpiralModel(const SpiralParams& p);

}  // namespace rfic::extraction
