// MFDTD — Multivariate Finite Difference Time Domain (Section 2.2,
// method 1a).
//
// The MPDE  ∂q/∂t1 + ∂q/∂t2 + f(x̂) = b̂(t1, t2)  is discretized with
// backward differences on a biperiodic (m1 × m2) grid; the resulting
// coupled nonlinear system over all grid points is solved by Newton with a
// sparse-LU linear solver (the Jacobian has the near block-diagonal
// structure the paper notes makes iterative methods attractive; both paths
// are available).
#pragma once

#include "circuit/mna.hpp"
#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "mpde/bivariate.hpp"
#include "perf/perf.hpp"

namespace rfic::mpde {

using circuit::MnaSystem;

struct MFDTDOptions {
  std::size_t m1 = 16;  ///< slow-axis grid points
  std::size_t m2 = 32;  ///< fast-axis grid points
  std::size_t maxNewton = 60;
  Real tolerance = 1e-9;
  bool useIterativeSolver = false;  ///< GMRES + Jacobi instead of sparse LU
  /// Retry ladder depth: a failed Newton run is re-attempted from the DC
  /// point with the inner GMRES tolerance tightened 100× and its iteration
  /// cap doubled per rung (iterative path; the sparse-LU path has no inner
  /// tolerance and retries are a plain restart).
  std::size_t maxRetries = 1;
  /// Optional cooperative budget (Newton + GMRES iterations charged; a trip
  /// returns SolverStatus::BudgetExceeded with the partial grid and
  /// suppresses retries).
  diag::RunBudget* budget = nullptr;
};

struct MFDTDResult {
  bool converged = false;
  /// Converged, MaxIterations, Stagnated (inner GMRES failed), Breakdown
  /// (singular grid Jacobian), or BudgetExceeded.
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  BivariateGrid grid;
  std::size_t newtonIterations = 0;
  std::size_t retries = 0;      ///< tightened-tolerance re-attempts
  std::size_t jacobianNnz = 0;  ///< assembled sparse Jacobian size
  perf::Snapshot perf;          ///< pipeline counters for the solve
};

MFDTDResult runMFDTD(const MnaSystem& sys, Real slowFreq, Real fastFreq,
                     const numeric::RVec& dcOp, const MFDTDOptions& opts = {});

}  // namespace rfic::mpde
