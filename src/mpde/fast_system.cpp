#include "mpde/fast_system.hpp"

#include <cmath>

#include "numeric/lu.hpp"
#include "perf/perf.hpp"

namespace rfic::mpde {

namespace {

// One BE step of the fast system from (j, y0) to sample j+1; propagates the
// dense sensitivity S ← (∂y1/∂y0)·S when provided.
bool beStep(const FastSystem& sys, std::size_t j, const RVec& y0, RVec& y1,
            RMat* sens, const FastPeriodicOptions& opts) {
  const std::size_t n = sys.dim();
  const Real h = sys.period() / static_cast<Real>(sys.samples());
  FastEval e0, e1;
  sys.eval(y0, j, e0, sens != nullptr);

  y1 = y0;
  bool converged = false;
  for (std::size_t it = 0; it < opts.maxNewtonPerStep; ++it) {
    sys.eval(y1, j + 1, e1, true);
    RVec r(n);
    for (std::size_t i = 0; i < n; ++i)
      r[i] = e1.q[i] - e0.q[i] + h * (e1.f[i] - e1.b[i]);
    if (numeric::normInf(r) < opts.stepTolerance * h) {
      converged = true;
      break;
    }
    RMat jmat = e1.C;
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = 0; b < n; ++b) jmat(a, b) += h * e1.G(a, b);
    const RVec dy = numeric::solveDense(std::move(jmat), r);
    y1 -= dy;
    if (numeric::norm2(dy) < opts.stepTolerance * (1.0 + numeric::norm2(y1))) {
      converged = true;
      break;
    }
  }
  if (!converged) return false;

  if (sens) {
    sys.eval(y1, j + 1, e1, true);
    RMat jmat = e1.C;
    for (std::size_t a = 0; a < n; ++a)
      for (std::size_t b = 0; b < n; ++b) jmat(a, b) += h * e1.G(a, b);
    numeric::LU<Real> lu(std::move(jmat));
    const RMat rhs = e0.C * (*sens);
    RMat out(n, sens->cols());
    RVec col(n);
    for (std::size_t c = 0; c < rhs.cols(); ++c) {
      for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, c);
      const RVec sol = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) out(i, c) = sol[i];
    }
    *sens = std::move(out);
  }
  return true;
}

}  // namespace

FastPeriodicResult solveFastPeriodic(const FastSystem& sys, const RVec& guess,
                                     const FastPeriodicOptions& opts) {
  const std::size_t n = sys.dim();
  RFIC_REQUIRE(guess.size() == n, "solveFastPeriodic: guess size mismatch");
  const std::size_t m = sys.samples();

  // Retry ladder: failed attempts restart from the original guess with the
  // inner BE step tolerance tightened 100× per rung (inner integration
  // error contaminating the monodromy is the usual failure mode).
  FastPeriodicResult res;
  FastPeriodicOptions attemptOpts = opts;
  for (std::size_t attempt = 0;; ++attempt) {
    res.converged = false;
    res.status = diag::SolverStatus::MaxIterations;
    RVec y0 = guess;
    for (std::size_t it = 0; it < opts.maxIterations; ++it) {
      ++res.newtonIterations;
      if (opts.budget) opts.budget->chargeNewton();
      if (diag::budgetExceeded(opts.budget)) {
        res.status = diag::SolverStatus::BudgetExceeded;
        return res;
      }
      res.monodromy = RMat::identity(n);
      res.waveform.assign(1, y0);
      RVec y = y0, y1;
      bool ok = true;
      for (std::size_t j = 0; j < m; ++j) {
        if (!beStep(sys, j, y, y1, &res.monodromy, attemptOpts)) {
          ok = false;
          break;
        }
        y = y1;
        res.waveform.push_back(y);
      }
      if (!ok) {
        res.status = diag::SolverStatus::Breakdown;
        break;
      }

      RVec g = res.waveform.back();
      g -= y0;
      if (numeric::norm2(g) < opts.tolerance * (1.0 + numeric::norm2(y0))) {
        res.converged = true;
        res.status = diag::SolverStatus::Converged;
        return res;
      }
      RMat jac = res.monodromy;
      for (std::size_t i = 0; i < n; ++i) jac(i, i) -= 1.0;
      RVec dy;
      try {
        if (diag::FaultInjector::global().fire(
                diag::FaultPoint::SingularJacobian))
          failNumerical("solveFastPeriodic: injected singular Jacobian");
        dy = numeric::solveDense(std::move(jac), g);
      } catch (const NumericalError&) {
        res.status = diag::SolverStatus::Breakdown;
        break;
      }
      y0 -= dy;
    }
    if (res.status == diag::SolverStatus::BudgetExceeded ||
        attempt >= opts.maxRetries)
      return res;
    attemptOpts.stepTolerance *= 0.01;
    ++res.retries;
    perf::global().addRetry();
  }
}

RMat spectralDifferentiation(std::size_t m, Real period) {
  RFIC_REQUIRE(m % 2 == 1, "spectralDifferentiation: odd grid size required");
  RFIC_REQUIRE(period > 0, "spectralDifferentiation: period must be positive");
  // D = Γ⁻¹ diag(j k ω) Γ; for odd m the result is the real matrix
  // D(i,l) = (2ω/m)·Σ_{k=1..K} −k·sin(2πk(i−l)/m)  … equivalently the
  // classic cotangent formula. Assemble via the explicit Fourier sum.
  const std::size_t kmax = (m - 1) / 2;
  const Real w = kTwoPi / period;
  RMat d(m, m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t l = 0; l < m; ++l) {
      // D(i,l) = −(2ω/m) Σ_{k=1..K} k·sin(2πk(i−l)/m)
      Real s = 0;
      for (std::size_t k = 1; k <= kmax; ++k) {
        const Real ang = kTwoPi * static_cast<Real>(k) *
                         (static_cast<Real>(i) - static_cast<Real>(l)) /
                         static_cast<Real>(m);
        s -= 2.0 * static_cast<Real>(k) * w * std::sin(ang) /
             static_cast<Real>(m);
      }
      d(i, l) = s;
    }
  }
  return d;
}

}  // namespace rfic::mpde
