// Fast-axis periodic boundary-value solver shared by the multi-time
// methods of Section 2.2.
//
// MMFT, TD-ENV, and hierarchical shooting all reduce to the same inner
// problem: a (possibly stacked/modified) DAE along the fast time axis t2,
//     d/dt2 Q(y) + F(y, t2) = B(t2),
// solved with periodic boundary conditions y(0) = y(T2) by shooting with
// dense sensitivity propagation. The abstraction below lets each method
// supply its own coupling terms (spectral differentiation for MMFT, BE
// slow-derivative terms for envelope/HS) while sharing the solver.
#pragma once

#include <vector>

#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "numeric/dense.hpp"

namespace rfic::mpde {

using numeric::RMat;
using numeric::RVec;

/// One evaluation of a fast-axis system at fast sample index j.
struct FastEval {
  RVec f, q, b;
  RMat G, C;  ///< dense Jacobians ∂f/∂y, ∂q/∂y (filled when requested)
};

/// A DAE along the fast axis, time-parameterized by sample index on a
/// uniform grid of `samples()` points covering one fast period.
class FastSystem {
 public:
  virtual ~FastSystem() = default;
  virtual std::size_t dim() const = 0;
  virtual std::size_t samples() const = 0;  ///< fast grid size m2
  virtual Real period() const = 0;          ///< T2
  /// Evaluate at state y and fast sample index j (t2 = j·T2/m2; index m2
  /// refers to the wrap-around point t2 = T2, identical sources to j = 0).
  virtual void eval(const RVec& y, std::size_t j, FastEval& e,
                    bool wantMatrices) const = 0;
};

struct FastPeriodicOptions {
  std::size_t maxIterations = 40;
  Real tolerance = 1e-9;
  std::size_t maxNewtonPerStep = 40;
  Real stepTolerance = 1e-10;
  /// Retry ladder depth: a failed shooting solve is re-attempted from the
  /// original guess with stepTolerance tightened 100× per rung.
  std::size_t maxRetries = 1;
  /// Optional cooperative budget (outer iterations charged; a trip returns
  /// SolverStatus::BudgetExceeded and suppresses retries).
  diag::RunBudget* budget = nullptr;
};

struct FastPeriodicResult {
  bool converged = false;
  /// Converged, Breakdown (inner BE step or singular shooting Jacobian),
  /// MaxIterations, or BudgetExceeded.
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::vector<RVec> waveform;  ///< m2+1 states, waveform[0] == waveform[m2]
  std::size_t newtonIterations = 0;  ///< outer (shooting) iterations
  std::size_t retries = 0;           ///< tightened-tolerance re-attempts
  RMat monodromy;
};

/// Solve the periodic BVP by backward-Euler shooting (BE chosen for the
/// same DAE-sensitivity reason as in analysis/shooting.hpp).
FastPeriodicResult solveFastPeriodic(const FastSystem& sys, const RVec& guess,
                                     const FastPeriodicOptions& opts = {});

/// Build the (real, antisymmetric-spectrum) Fourier spectral
/// differentiation matrix D on an m-point uniform periodic grid with period
/// T: (D u)_i ≈ du/dt at sample i, exact for trigonometric polynomials up
/// to harmonic (m−1)/2. m must be odd for an exactly real D.
RMat spectralDifferentiation(std::size_t m, Real period);

}  // namespace rfic::mpde
