#include "mpde/envelope.hpp"

#include <cmath>
#include <memory>

#include "circuit/mna_workspace.hpp"
#include "fft/plan.hpp"

namespace rfic::mpde {

namespace {

// Fast-axis system at frozen slow time t1 with the BE slow-derivative term:
//   d/dt2 q(y) + f(y) + q(y)/h1 = b̂(t1, t2) + q(x_prev(t2))/h1
// Evaluations run through one MnaWorkspace, so every call after the first
// stamps into the cached pattern with no triplet churn; the dense Jacobians
// the fast-axis BVP solver wants are scattered straight from the cached
// CSR value arrays.
class EnvelopeInner final : public FastSystem {
 public:
  EnvelopeInner(const MnaSystem& sys, Real t1, Real fastPeriod,
                std::size_t m2, Real h1,
                const std::vector<numeric::RVec>* prev)
      : ws_(sys), n_(sys.dim()), m2_(m2), t1_(t1), T2_(fastPeriod), h1_(h1) {
    if (h1_ > 0) {
      RFIC_REQUIRE(prev != nullptr && prev->size() >= m2_,
                   "EnvelopeInner: previous waveform required");
      // Pre-evaluate q along the previous waveform at every fast sample.
      qPrev_.resize(m2_);
      for (std::size_t j = 0; j < m2_; ++j) {
        const Real t2 = T2_ * static_cast<Real>(j) / static_cast<Real>(m2_);
        ws_.evalBivariate((*prev)[j], t1_, t2, false);
        qPrev_[j] = ws_.q();
      }
    }
  }

  std::size_t dim() const override { return n_; }
  std::size_t samples() const override { return m2_; }
  Real period() const override { return T2_; }

  void eval(const numeric::RVec& y, std::size_t j, FastEval& e,
            bool wantMatrices) const override {
    const std::size_t jw = j % m2_;
    const Real t2 = T2_ * static_cast<Real>(jw) / static_cast<Real>(m2_);
    ws_.evalBivariate(y, t1_, t2, wantMatrices);
    e.f = ws_.f();
    e.q = ws_.q();
    e.b = ws_.b();
    const Real w = (h1_ > 0) ? 1.0 / h1_ : 0.0;
    if (h1_ > 0) {
      for (std::size_t u = 0; u < n_; ++u) {
        e.f[u] += w * ws_.q()[u];
        e.b[u] += w * qPrev_[jw][u];
      }
    }
    if (wantMatrices) {
      if (e.G.rows() != n_ || e.G.cols() != n_) {
        e.G = numeric::RMat(n_, n_);
        e.C = numeric::RMat(n_, n_);
      } else {
        e.G.setZero();
        e.C.setZero();
      }
      const auto& rp = ws_.pattern().rowPtr();
      const auto& ci = ws_.pattern().colIdx();
      const auto& gv = ws_.gValues();
      const auto& cv = ws_.cValues();
      for (std::size_t row = 0; row < n_; ++row) {
        for (std::size_t p = rp[row]; p < rp[row + 1]; ++p) {
          e.G(row, ci[p]) = gv[p] + w * cv[p];
          e.C(row, ci[p]) = cv[p];
        }
      }
    }
  }

 private:
  mutable circuit::MnaWorkspace ws_;
  std::size_t n_, m2_;
  Real t1_, T2_, h1_;
  std::vector<numeric::RVec> qPrev_;
};

}  // namespace

FastPeriodicResult solveEnvelopeStep(
    const MnaSystem& sys, Real t1, Real fastFreq, std::size_t fastSteps,
    Real h1, const std::vector<numeric::RVec>* prevWaveform,
    const numeric::RVec& guess, const FastPeriodicOptions& opts) {
  EnvelopeInner inner(sys, t1, 1.0 / fastFreq, fastSteps, h1, prevWaveform);
  return solveFastPeriodic(inner, guess, opts);
}

std::vector<Complex> EnvelopeResult::harmonicEnvelope(std::size_t u,
                                                               int k) const {
  // One planned FFT per slow sample (replacing the former per-harmonic
  // direct DFT loop): the full fast spectrum costs O(m2 log m2) through the
  // cached plan, and the requested bin is picked out afterwards. The fast
  // grid length is the same at every slow step, so the plan and buffers are
  // fetched once and reused across the sweep.
  std::vector<Complex> out;
  out.reserve(waveforms.size());
  std::vector<Complex> sig, scratch;
  std::shared_ptr<const fft::Plan> plan;
  for (const auto& wf : waveforms) {
    RFIC_REQUIRE(wf.size() >= 2, "harmonicEnvelope: empty fast waveform");
    const std::size_t m2 = wf.size() - 1;  // wrap point excluded
    if (!plan || plan->size() != m2) {
      plan = fft::PlanCache::global().get(m2);
      sig.resize(m2);
      scratch.resize(plan->scratchSize());
    }
    for (std::size_t j = 0; j < m2; ++j) sig[j] = wf[j][u];
    plan->forward(sig.data(), scratch.data());
    const int im2 = static_cast<int>(m2);
    const std::size_t bin = static_cast<std::size_t>(((k % im2) + im2) % im2);
    out.push_back(sig[bin] / static_cast<Real>(m2));
  }
  return out;
}

EnvelopeResult runEnvelope(const MnaSystem& sys, Real fastFreq,
                           const numeric::RVec& dcOp,
                           const EnvelopeOptions& opts) {
  RFIC_REQUIRE(fastFreq > 0, "runEnvelope: bad fast frequency");
  RFIC_REQUIRE(opts.slowSpan > 0 && opts.slowSteps > 0,
               "runEnvelope: slowSpan/slowSteps required");
  EnvelopeResult res;
  res.fastPeriod = 1.0 / fastFreq;
  const Real h1 = opts.slowSpan / static_cast<Real>(opts.slowSteps);

  // Initial condition: fast steady state with slow sources frozen at t1=0.
  FastPeriodicResult step = solveEnvelopeStep(
      sys, 0.0, fastFreq, opts.fastSteps, 0.0, nullptr, dcOp, opts.inner);
  res.status = step.status;
  res.retries += step.retries;
  if (!step.converged) return res;
  res.slowTimes.push_back(0.0);
  res.waveforms.push_back(step.waveform);

  for (std::size_t i = 1; i <= opts.slowSteps; ++i) {
    const Real t1 = h1 * static_cast<Real>(i);
    step = solveEnvelopeStep(sys, t1, fastFreq, opts.fastSteps, h1,
                             &res.waveforms.back(), step.waveform[0],
                             opts.inner);
    res.status = step.status;
    res.retries += step.retries;
    if (!step.converged) return res;
    res.slowTimes.push_back(t1);
    res.waveforms.push_back(step.waveform);
  }
  res.converged = true;
  res.status = diag::SolverStatus::Converged;
  return res;
}

}  // namespace rfic::mpde
