// MMFT — Multivariate Mixed Frequency-Time method (Section 2.2, method 2).
//
// The slow-axis dependence is expanded in a short Fourier series (the
// "almost linear signal path" assumption: a few harmonics of the RF tone
// suffice), collocated on an odd grid of m1 = 2K+1 slow points; the
// fast-axis action (the strongly nonlinear switching) is resolved in the
// time domain by shooting over one fast period. This is the method the
// paper demonstrates on the double-balanced switching mixer of Fig. 4.
#pragma once

#include "circuit/mna.hpp"
#include "mpde/bivariate.hpp"
#include "mpde/fast_system.hpp"

namespace rfic::mpde {

using circuit::MnaSystem;

struct MMFTOptions {
  std::size_t slowHarmonics = 3;  ///< K — Fourier harmonics of the slow tone
  std::size_t fastSteps = 200;    ///< time steps per fast period
  FastPeriodicOptions inner;
};

struct MMFTResult {
  bool converged = false;
  BivariateGrid grid;  ///< (2K+1) × fastSteps biperiodic samples
  std::size_t shootingIterations = 0;
};

/// Solve the quasi-periodic MPDE with slow fundamental `slowFreq` (Fourier,
/// t1 axis) and fast fundamental `fastFreq` (shooting, t2 axis), starting
/// from the DC operating point.
MMFTResult runMMFT(const MnaSystem& sys, Real slowFreq, Real fastFreq,
                   const numeric::RVec& dcOp, const MMFTOptions& opts = {});

}  // namespace rfic::mpde
