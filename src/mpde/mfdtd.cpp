#include "mpde/mfdtd.hpp"

#include <cmath>

#include "sparse/krylov.hpp"
#include "sparse/sparse_lu.hpp"

namespace rfic::mpde {

MFDTDResult runMFDTD(const MnaSystem& sys, Real slowFreq, Real fastFreq,
                     const numeric::RVec& dcOp, const MFDTDOptions& opts) {
  RFIC_REQUIRE(slowFreq > 0 && fastFreq > 0, "runMFDTD: bad frequencies");
  const std::size_t n = sys.dim();
  RFIC_REQUIRE(dcOp.size() == n, "runMFDTD: DC point size mismatch");
  const std::size_t m1 = opts.m1, m2 = opts.m2;
  const Real T1 = 1.0 / slowFreq, T2 = 1.0 / fastFreq;
  const Real h1 = T1 / static_cast<Real>(m1);
  const Real h2 = T2 / static_cast<Real>(m2);
  const std::size_t np = m1 * m2;     // grid points
  const std::size_t nu = np * n;      // total unknowns

  MFDTDResult res;
  res.grid = BivariateGrid(n, m1, m2, T1, T2);

  // Flat unknown layout: point p = i·m2 + j holds block [p·n, p·n+n).
  numeric::RVec x(nu);
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t u = 0; u < n; ++u) x[p * n + u] = dcOp[u];

  std::vector<circuit::MnaEval> evals(np);
  numeric::RVec xp(n);

  for (std::size_t it = 0; it < opts.maxNewton; ++it) {
    ++res.newtonIterations;

    // Evaluate every grid point.
    for (std::size_t i = 0; i < m1; ++i) {
      for (std::size_t j = 0; j < m2; ++j) {
        const std::size_t p = i * m2 + j;
        for (std::size_t u = 0; u < n; ++u) xp[u] = x[p * n + u];
        sys.evalBivariate(xp, res.grid.t1(i), res.grid.t2(j), evals[p], true);
      }
    }

    // Residual with BE differences and periodic wrap.
    numeric::RVec r(nu);
    Real bScale = 0;
    for (std::size_t i = 0; i < m1; ++i) {
      const std::size_t im = (i + m1 - 1) % m1;
      for (std::size_t j = 0; j < m2; ++j) {
        const std::size_t jm = (j + m2 - 1) % m2;
        const std::size_t p = i * m2 + j;
        const auto& e = evals[p];
        const auto& e1 = evals[im * m2 + j];
        const auto& e2 = evals[i * m2 + jm];
        for (std::size_t u = 0; u < n; ++u) {
          r[p * n + u] = (e.q[u] - e1.q[u]) / h1 + (e.q[u] - e2.q[u]) / h2 +
                         e.f[u] - e.b[u];
          bScale = std::max(bScale, std::abs(e.b[u]) + std::abs(e.f[u]));
        }
      }
    }
    if (numeric::norm2(r) <
        opts.tolerance * (1.0 + bScale) * std::sqrt(static_cast<Real>(nu))) {
      res.converged = true;
      break;
    }

    // Assemble the global sparse Jacobian.
    sparse::RTriplets jac(nu, nu);
    for (std::size_t i = 0; i < m1; ++i) {
      const std::size_t im = (i + m1 - 1) % m1;
      for (std::size_t j = 0; j < m2; ++j) {
        const std::size_t jm = (j + m2 - 1) % m2;
        const std::size_t p = i * m2 + j;
        const std::size_t p1 = im * m2 + j;
        const std::size_t p2 = i * m2 + jm;
        const auto& e = evals[p];
        for (const auto& en : e.C.entries()) {
          jac.add(p * n + en.row, p * n + en.col,
                  en.value * (1.0 / h1 + 1.0 / h2));
        }
        for (const auto& en : e.G.entries())
          jac.add(p * n + en.row, p * n + en.col, en.value);
        for (const auto& en : evals[p1].C.entries())
          jac.add(p * n + en.row, p1 * n + en.col, -en.value / h1);
        for (const auto& en : evals[p2].C.entries())
          jac.add(p * n + en.row, p2 * n + en.col, -en.value / h2);
      }
    }

    numeric::RVec dx(nu);
    if (opts.useIterativeSolver) {
      sparse::RCSR a(jac);
      res.jacobianNnz = a.nnz();
      sparse::CSROperator<Real> op(a);
      sparse::JacobiPreconditioner<Real> prec(a);
      sparse::IterativeOptions io;
      io.tolerance = 1e-8;
      io.maxIterations = 2000;
      io.restart = 100;
      const auto st = sparse::gmres(op, r, dx, &prec, io);
      if (!st.converged)
        failNumerical("runMFDTD: GMRES failed on the grid Jacobian");
    } else {
      sparse::RSparseLU lu(jac);
      res.jacobianNnz = lu.factorNnz();
      dx = lu.solve(r);
    }
    x -= dx;
  }

  for (std::size_t i = 0; i < m1; ++i)
    for (std::size_t j = 0; j < m2; ++j)
      for (std::size_t u = 0; u < n; ++u)
        res.grid.at(u, i, j) = x[(i * m2 + j) * n + u];
  return res;
}

}  // namespace rfic::mpde
