#include "mpde/mfdtd.hpp"

#include <cmath>
#include <cstdint>
#include <limits>

#include "circuit/mna_workspace.hpp"
#include "diag/contracts.hpp"
#include "sparse/krylov.hpp"
#include "sparse/symbolic_lu.hpp"

namespace rfic::mpde {

namespace {

// Position of column `col` in CSR row `row`, found by binary search.
std::size_t csrPos(const sparse::RCSR& a, std::size_t row, std::size_t col) {
  const auto& rp = a.rowPtr();
  const auto& ci = a.colIdx();
  std::size_t lo = rp[row], hi = rp[row + 1];
  while (lo < hi) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (ci[mid] < col)
      lo = mid + 1;
    else
      hi = mid;
  }
  RFIC_REQUIRE(lo < rp[row + 1] && ci[lo] == col,
               "runMFDTD: grid Jacobian position missing from pattern");
  return lo;
}

}  // namespace

MFDTDResult runMFDTD(const MnaSystem& sys, Real slowFreq, Real fastFreq,
                     const numeric::RVec& dcOp, const MFDTDOptions& opts) {
  RFIC_REQUIRE(slowFreq > 0 && fastFreq > 0, "runMFDTD: bad frequencies");
  const std::size_t n = sys.dim();
  RFIC_REQUIRE(dcOp.size() == n, "runMFDTD: DC point size mismatch");
  const std::size_t m1 = opts.m1, m2 = opts.m2;
  const Real T1 = 1.0 / slowFreq, T2 = 1.0 / fastFreq;
  const Real h1 = T1 / static_cast<Real>(m1);
  const Real h2 = T2 / static_cast<Real>(m2);
  const std::size_t np = m1 * m2;     // grid points
  const std::size_t nu = np * n;      // total unknowns

  MFDTDResult res;
  res.grid = BivariateGrid(n, m1, m2, T1, T2);

  // Flat unknown layout: point p = i·m2 + j holds block [p·n, p·n+n).
  numeric::RVec x(nu);

  // Every grid point stamps the same circuit, so all share the workspace
  // pattern: one per-point (f, q, b) snapshot plus G/C value arrays.
  circuit::MnaWorkspace ws(sys);
  std::vector<numeric::RVec> fV(np), qV(np), bV(np);
  std::vector<std::vector<Real>> gV(np), cV(np);
  numeric::RVec xp(n);

  // The global grid Jacobian inherits its structure from the workspace
  // pattern replicated over the (diagonal, t1-neighbor, t2-neighbor)
  // blocks. It is assembled once; each Newton iteration only refills the
  // value array and numerically refactors on the recorded pivot order.
  sparse::RCSR gpat;
  std::vector<std::uint32_t> posDiag, posP1, posP2;
  std::vector<Real> gvals;
  sparse::RSymbolicLU glu;
  std::size_t patVer = 0;
  bool havePattern = false;
  // Only the C pattern couples neighboring grid points; using the full
  // G∪C union there would multiply the inter-block fill-in. A slot joins
  // cActive the first time any grid point stamps charge into it, and the
  // global structure is rebuilt when the set grows.
  std::vector<char> cActive;
  std::vector<std::uint32_t> cSlots;

  // Retry ladder (iterative path): failed attempts restart from the DC
  // point with the GMRES tolerance tightened 100× and the iteration cap
  // doubled per rung. The LU path retries as a plain restart.
  Real gmresTol = 1e-8;
  std::size_t gmresMaxIter = 2000;
  for (std::size_t attempt = 0;; ++attempt) {
  res.converged = false;
  res.status = diag::SolverStatus::MaxIterations;
  for (std::size_t p = 0; p < np; ++p)
    for (std::size_t u = 0; u < n; ++u) x[p * n + u] = dcOp[u];

  for (std::size_t it = 0; it < opts.maxNewton; ++it) {
    ++res.newtonIterations;
    if (opts.budget) opts.budget->chargeNewton();
    if (diag::budgetExceeded(opts.budget)) {
      res.status = diag::SolverStatus::BudgetExceeded;
      break;
    }

    // Evaluate every grid point; restart the sweep if a conditional stamp
    // grows the shared pattern mid-flight.
    for (bool done = false; !done;) {
      done = true;
      for (std::size_t i = 0; i < m1 && done; ++i) {
        for (std::size_t j = 0; j < m2; ++j) {
          const std::size_t p = i * m2 + j;
          for (std::size_t u = 0; u < n; ++u) xp[u] = x[p * n + u];
          ws.evalBivariate(xp, res.grid.t1(i), res.grid.t2(j), true);
          if (p > 0 && ws.patternVersion() != patVer) {
            done = false;
            break;
          }
          if (p == 0 && ws.patternVersion() != patVer) {
            patVer = ws.patternVersion();
            havePattern = false;
            cActive.clear();  // slot numbering changed with the pattern
          }
          fV[p] = ws.f();
          qV[p] = ws.q();
          bV[p] = ws.b();
          gV[p] = ws.gValues();
          cV[p] = ws.cValues();
        }
      }
    }

    // Residual with BE differences and periodic wrap.
    numeric::RVec r(nu);
    Real bScale = 0;
    for (std::size_t i = 0; i < m1; ++i) {
      const std::size_t im = (i + m1 - 1) % m1;
      for (std::size_t j = 0; j < m2; ++j) {
        const std::size_t jm = (j + m2 - 1) % m2;
        const std::size_t p = i * m2 + j;
        const auto& q1 = qV[im * m2 + j];
        const auto& q2 = qV[i * m2 + jm];
        for (std::size_t u = 0; u < n; ++u) {
          r[p * n + u] = (qV[p][u] - q1[u]) / h1 + (qV[p][u] - q2[u]) / h2 +
                         fV[p][u] - bV[p][u];
          bScale = std::max(bScale, std::abs(bV[p][u]) + std::abs(fV[p][u]));
        }
      }
    }
    if (diag::FaultInjector::global().fire(diag::FaultPoint::NanInResidual))
      r[0] = std::numeric_limits<Real>::quiet_NaN();
    const Real rnorm = numeric::norm2(r);  // sum of squares propagates NaN
    if (!std::isfinite(rnorm)) {
      res.status = diag::SolverStatus::Diverged;
      break;
    }
    if (rnorm <
        opts.tolerance * (1.0 + bScale) * std::sqrt(static_cast<Real>(nu))) {
      res.converged = true;
      res.status = diag::SolverStatus::Converged;
      break;
    }

    const auto& prp = ws.pattern().rowPtr();
    const auto& pci = ws.pattern().colIdx();
    const std::size_t pnnz = ws.pattern().nnz();

    cActive.resize(pnnz, 0);
    for (std::size_t q = 0; q < pnnz; ++q) {
      if (cActive[q]) continue;
      for (std::size_t p = 0; p < np; ++p) {
        if (cV[p][q] != Real{}) {
          cActive[q] = 1;
          havePattern = false;
          break;
        }
      }
    }

    if (!havePattern) {
      cSlots.clear();
      for (std::size_t q = 0; q < pnnz; ++q)
        if (cActive[q]) cSlots.push_back(static_cast<std::uint32_t>(q));
      // Assemble the union structure once, then cache the CSR position of
      // every (point, pattern-slot, block) contribution so value fills are
      // flat array writes.
      // Slot → pattern row, for addressing neighbor-block entries by slot.
      std::vector<std::size_t> slotRow(pnnz);
      for (std::size_t row = 0; row < n; ++row)
        for (std::size_t q = prp[row]; q < prp[row + 1]; ++q) slotRow[q] = row;

      const std::size_t ncs = cSlots.size();
      sparse::RTriplets pat(nu, nu);
      for (std::size_t i = 0; i < m1; ++i) {
        const std::size_t im = (i + m1 - 1) % m1;
        for (std::size_t j = 0; j < m2; ++j) {
          const std::size_t jm = (j + m2 - 1) % m2;
          const std::size_t p = i * m2 + j;
          const std::size_t p1 = im * m2 + j;
          const std::size_t p2 = i * m2 + jm;
          for (std::size_t row = 0; row < n; ++row)
            for (std::size_t q = prp[row]; q < prp[row + 1]; ++q)
              pat.add(p * n + row, p * n + pci[q], 0.0);
          for (const std::uint32_t q : cSlots) {
            pat.add(p * n + slotRow[q], p1 * n + pci[q], 0.0);
            pat.add(p * n + slotRow[q], p2 * n + pci[q], 0.0);
          }
        }
      }
      gpat = sparse::RCSR(pat);
      posDiag.resize(np * pnnz);
      posP1.resize(np * ncs);
      posP2.resize(np * ncs);
      for (std::size_t i = 0; i < m1; ++i) {
        const std::size_t im = (i + m1 - 1) % m1;
        for (std::size_t j = 0; j < m2; ++j) {
          const std::size_t jm = (j + m2 - 1) % m2;
          const std::size_t p = i * m2 + j;
          const std::size_t p1 = im * m2 + j;
          const std::size_t p2 = i * m2 + jm;
          for (std::size_t row = 0; row < n; ++row) {
            for (std::size_t q = prp[row]; q < prp[row + 1]; ++q) {
              posDiag[p * pnnz + q] = static_cast<std::uint32_t>(
                  csrPos(gpat, p * n + row, p * n + pci[q]));
            }
          }
          for (std::size_t s = 0; s < ncs; ++s) {
            const std::uint32_t q = cSlots[s];
            const std::size_t grow = p * n + slotRow[q];
            posP1[p * ncs + s] = static_cast<std::uint32_t>(
                csrPos(gpat, grow, p1 * n + pci[q]));
            posP2[p * ncs + s] = static_cast<std::uint32_t>(
                csrPos(gpat, grow, p2 * n + pci[q]));
          }
        }
      }
      glu = sparse::RSymbolicLU();
      havePattern = true;
    }

    gvals.assign(gpat.nnz(), 0.0);
    const std::size_t ncs = cSlots.size();
    const Real dd = 1.0 / h1 + 1.0 / h2;
    for (std::size_t i = 0; i < m1; ++i) {
      const std::size_t im = (i + m1 - 1) % m1;
      for (std::size_t j = 0; j < m2; ++j) {
        const std::size_t jm = (j + m2 - 1) % m2;
        const std::size_t p = i * m2 + j;
        const auto& c1 = cV[im * m2 + j];
        const auto& c2 = cV[i * m2 + jm];
        for (std::size_t q = 0; q < pnnz; ++q)
          gvals[posDiag[p * pnnz + q]] += cV[p][q] * dd + gV[p][q];
        for (std::size_t s = 0; s < ncs; ++s) {
          const std::uint32_t q = cSlots[s];
          gvals[posP1[p * ncs + s]] -= c1[q] / h1;
          gvals[posP2[p * ncs + s]] -= c2[q] / h2;
        }
      }
    }
    res.jacobianNnz = gpat.nnz();

    numeric::RVec dx(nu);
    if (opts.useIterativeSolver) {
      sparse::RCSR a = gpat;
      a.values() = gvals;
      sparse::CSROperator<Real> op(a);
      sparse::JacobiPreconditioner<Real> prec(a);
      sparse::IterativeOptions io;
      io.tolerance = gmresTol;
      io.maxIterations = gmresMaxIter;
      io.restart = 100;
      io.budget = opts.budget;
      const auto st = sparse::gmres(op, r, dx, &prec, io);
      if (st.status == diag::SolverStatus::BudgetExceeded) {
        res.status = diag::SolverStatus::BudgetExceeded;
        break;
      }
      if (!st.converged) {
        // A stalled inner solve is a structured, retryable failure — not a
        // process abort.
        res.status = diag::SolverStatus::Stagnated;
        break;
      }
    } else {
      try {
        if (diag::FaultInjector::global().fire(
                diag::FaultPoint::SingularJacobian))
          failNumerical("runMFDTD: injected singular Jacobian");
        const perf::Timer timer;
        if (!glu.analyzed()) {
          sparse::RCSR a = gpat;
          a.values() = gvals;
          glu.factor(a);
          ++res.perf.factorizations;
          res.perf.factorNs += timer.ns();
          perf::global().addFactorization(timer.ns());
        } else if (glu.refactor(gvals) == diag::SolverStatus::Converged) {
          ++res.perf.refactorizations;
          res.perf.refactorNs += timer.ns();
          perf::global().addRefactorization(timer.ns());
        } else {  // repivoted: a full factorization ran under the hood
          ++res.perf.factorizations;
          res.perf.factorNs += timer.ns();
          perf::global().addFactorization(timer.ns());
        }
        res.jacobianNnz = glu.factorNnz();
        const perf::Timer solveTimer;
        dx = glu.solve(r);
        ++res.perf.solves;
        res.perf.solveNs += solveTimer.ns();
        perf::global().addSolve(solveTimer.ns());
      } catch (const NumericalError&) {
        res.status = diag::SolverStatus::Breakdown;
        break;
      }
    }
    x -= dx;
  }

  if (res.converged || res.status == diag::SolverStatus::BudgetExceeded ||
      attempt >= opts.maxRetries)
    break;
  gmresTol *= 0.01;
  gmresMaxIter *= 2;
  ++res.retries;
  ws.noteRetry();
  }  // attempt ladder

  for (std::size_t i = 0; i < m1; ++i)
    for (std::size_t j = 0; j < m2; ++j)
      for (std::size_t u = 0; u < n; ++u)
        res.grid.at(u, i, j) = x[(i * m2 + j) * n + u];
  res.perf += ws.counters();
  return res;
}

}  // namespace rfic::mpde
