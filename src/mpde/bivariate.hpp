// Bivariate (multi-time) waveform representation — the core idea of the
// MPDE formulation of Section 2.2: a quasi-periodic signal y(t) with widely
// separated rates is represented as ŷ(t1, t2), biperiodic and cheap to
// sample, with y(t) = ŷ(t, t).
#pragma once

#include <functional>
#include <vector>

#include "numeric/dense.hpp"

namespace rfic::mpde {


using numeric::RVec;

/// States of a circuit on an (m1 × m2) biperiodic grid: x̂(t1_i, t2_j) with
/// t1_i = i·T1/m1, t2_j = j·T2/m2.
class BivariateGrid {
 public:
  BivariateGrid() = default;
  BivariateGrid(std::size_t n, std::size_t m1, std::size_t m2, Real t1Period,
                Real t2Period)
      : n_(n), m1_(m1), m2_(m2), T1_(t1Period), T2_(t2Period),
        data_(n * m1 * m2, 0.0) {}

  std::size_t dim() const { return n_; }
  std::size_t m1() const { return m1_; }
  std::size_t m2() const { return m2_; }
  Real t1Period() const { return T1_; }
  Real t2Period() const { return T2_; }
  Real t1(std::size_t i) const {
    return T1_ * static_cast<Real>(i) / static_cast<Real>(m1_);
  }
  Real t2(std::size_t j) const {
    return T2_ * static_cast<Real>(j) / static_cast<Real>(m2_);
  }

  Real& at(std::size_t u, std::size_t i, std::size_t j) {
    return data_[(i * m2_ + j) * n_ + u];
  }
  Real at(std::size_t u, std::size_t i, std::size_t j) const {
    return data_[(i * m2_ + j) * n_ + u];
  }

  /// State vector at grid point (i, j).
  RVec state(std::size_t i, std::size_t j) const;
  void setState(std::size_t i, std::size_t j, const RVec& x);

  /// Value of the physical signal x_u(t) = x̂_u(t, t) by bilinear
  /// interpolation on the biperiodic grid.
  Real evaluateUnivariate(std::size_t u, Real t) const;

  /// Time-varying slow harmonic X_k(t2_j): the k-th Fourier coefficient of
  /// the t1-dependence, one complex value per fast sample — the quantity
  /// Fig. 4 plots for the switching mixer.
  std::vector<Complex> slowHarmonicVsFast(std::size_t u, int k) const;

  /// Full mix-product coefficient X_{k1,k2}: amplitude of the tone at
  /// k1/T1 + k2/T2 is 2·|X_{k1,k2}| (k ≠ 0).
  Complex mixCoefficient(std::size_t u, int k1, int k2) const;

 private:
  std::size_t n_ = 0, m1_ = 0, m2_ = 0;
  Real T1_ = 0, T2_ = 0;
  std::vector<Real> data_;
};

/// --- Fig. 2 / Fig. 3 reproduction helpers -------------------------------
///
/// The paper's demonstration signal: y(t) = sin(2π t/T1) · pulse(t/T2),
/// where pulse is a raised-cosine-edged rectangular pulse train of unit
/// period, and T1/T2 is the time-scale separation (10⁹ in the paper's
/// example).
Real demoPulse(Real phase, Real edge = 0.05);
Real demoSignal(Real t, Real t1Period, Real t2Period);

/// Number of uniform samples per T1 needed to represent y(t) on [0, T1) to
/// within `tol` (max interpolation error, linear interpolation), univariate
/// sampling. Grows linearly with the scale separation.
std::size_t univariateSamplesNeeded(Real scaleSeparation, Real tol);

/// Number of samples of the bivariate form ŷ(t1, t2) = sin(2π t1)·pulse(t2)
/// needed for the same accuracy — independent of the separation.
std::size_t bivariateSamplesNeeded(Real tol);

/// Max |y(t) − interp(ŷ)(t, t)| over a probe set: demonstrates that the
/// bivariate reconstruction reproduces the univariate signal.
Real bivariateReconstructionError(Real scaleSeparation, std::size_t m1,
                                  std::size_t m2);

}  // namespace rfic::mpde
