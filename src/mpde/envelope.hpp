// TD-ENV — time-domain envelope following (Section 2.2, method 3).
//
// Mixed initial/periodic boundary conditions on the MPDE: periodic in the
// fast variable t2, transient (initial-value) in the slow variable t1. At
// every slow BE step the solver computes a full periodic fast waveform, so
// the output is the modulation envelope of each fast harmonic — exactly
// what a circuit of the power-converter / switched-capacitor / switching-
// mixer class needs when its slow drive is not periodic.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "mpde/fast_system.hpp"

namespace rfic::mpde {

using circuit::MnaSystem;

struct EnvelopeOptions {
  Real slowSpan = 0;          ///< total slow-time interval to cover
  std::size_t slowSteps = 0;  ///< number of BE envelope steps
  std::size_t fastSteps = 100;
  FastPeriodicOptions inner;
};

struct EnvelopeResult {
  bool converged = false;
  /// Status of the last inner fast-periodic solve (Converged when the full
  /// envelope march succeeded; Breakdown/MaxIterations/BudgetExceeded
  /// identify why the march stopped early — the partial envelope up to the
  /// failing slow step is retained).
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::size_t retries = 0;  ///< inner tightened-tolerance re-attempts, summed
  Real fastPeriod = 0;
  std::vector<Real> slowTimes;  ///< slowSteps+1 instants
  /// One periodic fast waveform per slow instant; waveform[i][j] is the
  /// state at (t1_i, t2_j), j = 0..fastSteps (wrap point included).
  std::vector<std::vector<numeric::RVec>> waveforms;

  /// Complex fast-harmonic k of unknown u vs slow time — the envelope.
  std::vector<Complex> harmonicEnvelope(std::size_t u, int k) const;
};

/// March the envelope from the t1 = 0 fast steady state.
EnvelopeResult runEnvelope(const MnaSystem& sys, Real fastFreq,
                           const numeric::RVec& dcOp,
                           const EnvelopeOptions& opts);

/// Internal building block shared with hierarchical shooting: solve the
/// fast-periodic problem at frozen slow time t1 with a BE slow-derivative
/// coupling of weight 1/h1 against the previous waveform (pass h1 ≤ 0 for
/// no coupling — a plain PSS at frozen t1).
FastPeriodicResult solveEnvelopeStep(
    const MnaSystem& sys, Real t1, Real fastFreq, std::size_t fastSteps,
    Real h1, const std::vector<numeric::RVec>* prevWaveform,
    const numeric::RVec& guess, const FastPeriodicOptions& opts);

}  // namespace rfic::mpde
