#include "mpde/mmft.hpp"

#include "diag/contracts.hpp"

namespace rfic::mpde {

namespace {

// Stacked fast-axis system: block m holds x̂(t1_m, t2); the slow derivative
// ∂q/∂t1 becomes the spectral matrix D applied across blocks.
class MMFTStacked final : public FastSystem {
 public:
  MMFTStacked(const MnaSystem& sys, Real slowPeriod, Real fastPeriod,
              std::size_t m1, std::size_t m2)
      : sys_(sys),
        n_(sys.dim()),
        m1_(m1),
        m2_(m2),
        T1_(slowPeriod),
        T2_(fastPeriod),
        d_(spectralDifferentiation(m1, slowPeriod)) {}

  std::size_t dim() const override { return n_ * m1_; }
  std::size_t samples() const override { return m2_; }
  Real period() const override { return T2_; }

  void eval(const numeric::RVec& y, std::size_t j, FastEval& e,
            bool wantMatrices) const override {
    const std::size_t nd = dim();
    e.f.assign(nd, 0.0);
    e.q.assign(nd, 0.0);
    e.b.assign(nd, 0.0);
    if (wantMatrices) {
      e.G = numeric::RMat(nd, nd);
      e.C = numeric::RMat(nd, nd);
    }
    const Real t2 = T2_ * static_cast<Real>(j % m2_) / static_cast<Real>(m2_);

    // Per-block circuit evaluations.
    numeric::RVec xm(n_);
    std::vector<circuit::MnaEval> evals(m1_);
    for (std::size_t m = 0; m < m1_; ++m) {
      const Real t1 = T1_ * static_cast<Real>(m) / static_cast<Real>(m1_);
      for (std::size_t u = 0; u < n_; ++u) xm[u] = y[m * n_ + u];
      sys_.evalBivariate(xm, t1, t2, evals[m], wantMatrices);
    }
    for (std::size_t m = 0; m < m1_; ++m) {
      const auto& ev = evals[m];
      for (std::size_t u = 0; u < n_; ++u) {
        const std::size_t r = m * n_ + u;
        e.q[r] = ev.q[u];
        e.b[r] = ev.b[u];
        // f block + spectral slow-derivative coupling Σ_l D(m,l)·q_l.
        Real fv = ev.f[u];
        for (std::size_t l = 0; l < m1_; ++l)
          fv += d_(m, l) * evals[l].q[u];
        e.f[r] = fv;
      }
      if (wantMatrices) {
        for (const auto& en : ev.G.entries())
          e.G(m * n_ + en.row, m * n_ + en.col) += en.value;
        for (const auto& en : ev.C.entries())
          e.C(m * n_ + en.row, m * n_ + en.col) += en.value;
        // Coupling Jacobian: ∂/∂y_l of D(m,l)·q(y_l) = D(m,l)·C_l.
        for (std::size_t l = 0; l < m1_; ++l) {
          const Real dml = d_(m, l);
          if (diag::exactlyZero(dml)) continue;
          for (const auto& en : evals[l].C.entries())
            e.G(m * n_ + en.row, l * n_ + en.col) += dml * en.value;
        }
      }
    }
  }

 private:
  const MnaSystem& sys_;
  std::size_t n_, m1_, m2_;
  Real T1_, T2_;
  numeric::RMat d_;
};

}  // namespace

MMFTResult runMMFT(const MnaSystem& sys, Real slowFreq, Real fastFreq,
                   const numeric::RVec& dcOp, const MMFTOptions& opts) {
  RFIC_REQUIRE(slowFreq > 0 && fastFreq > 0, "runMMFT: bad frequencies");
  RFIC_REQUIRE(dcOp.size() == sys.dim(), "runMMFT: DC point size mismatch");
  const std::size_t n = sys.dim();
  const std::size_t m1 = 2 * opts.slowHarmonics + 1;
  const std::size_t m2 = opts.fastSteps;

  MMFTStacked stacked(sys, 1.0 / slowFreq, 1.0 / fastFreq, m1, m2);

  numeric::RVec guess(n * m1);
  for (std::size_t m = 0; m < m1; ++m)
    for (std::size_t u = 0; u < n; ++u) guess[m * n + u] = dcOp[u];

  const FastPeriodicResult inner =
      solveFastPeriodic(stacked, guess, opts.inner);

  MMFTResult res;
  res.shootingIterations = inner.newtonIterations;
  res.converged = inner.converged;
  res.grid = BivariateGrid(n, m1, m2, 1.0 / slowFreq, 1.0 / fastFreq);
  for (std::size_t j = 0; j < m2 && j < inner.waveform.size(); ++j)
    for (std::size_t m = 0; m < m1; ++m)
      for (std::size_t u = 0; u < n; ++u)
        res.grid.at(u, m, j) = inner.waveform[j][m * n + u];
  return res;
}

}  // namespace rfic::mpde
