#include "mpde/bivariate.hpp"

#include <cmath>

namespace rfic::mpde {

RVec BivariateGrid::state(std::size_t i, std::size_t j) const {
  RVec x(n_);
  for (std::size_t u = 0; u < n_; ++u) x[u] = at(u, i, j);
  return x;
}

void BivariateGrid::setState(std::size_t i, std::size_t j, const RVec& x) {
  RFIC_REQUIRE(x.size() == n_, "BivariateGrid::setState size mismatch");
  for (std::size_t u = 0; u < n_; ++u) at(u, i, j) = x[u];
}

Real BivariateGrid::evaluateUnivariate(std::size_t u, Real t) const {
  const Real p1 = t / T1_ * static_cast<Real>(m1_);
  const Real p2 = t / T2_ * static_cast<Real>(m2_);
  const Real f1 = std::floor(p1), f2 = std::floor(p2);
  const Real w1 = p1 - f1, w2 = p2 - f2;
  const auto i0 = static_cast<std::size_t>(
      static_cast<long long>(f1) % static_cast<long long>(m1_) +
      (f1 < 0 ? static_cast<long long>(m1_) : 0));
  const auto j0 = static_cast<std::size_t>(
      static_cast<long long>(f2) % static_cast<long long>(m2_) +
      (f2 < 0 ? static_cast<long long>(m2_) : 0));
  const std::size_t i1 = (i0 + 1) % m1_;
  const std::size_t j1 = (j0 + 1) % m2_;
  return (1 - w1) * (1 - w2) * at(u, i0 % m1_, j0 % m2_) +
         (1 - w1) * w2 * at(u, i0 % m1_, j1) +
         w1 * (1 - w2) * at(u, i1, j0 % m2_) + w1 * w2 * at(u, i1, j1);
}

std::vector<Complex> BivariateGrid::slowHarmonicVsFast(std::size_t u,
                                                       int k) const {
  std::vector<Complex> out(m2_);
  for (std::size_t j = 0; j < m2_; ++j) {
    Complex s = 0;
    for (std::size_t i = 0; i < m1_; ++i) {
      const Real ang = -kTwoPi * static_cast<Real>(k) * static_cast<Real>(i) /
                       static_cast<Real>(m1_);
      s += at(u, i, j) * Complex(std::cos(ang), std::sin(ang));
    }
    out[j] = s / static_cast<Real>(m1_);
  }
  return out;
}

Complex BivariateGrid::mixCoefficient(std::size_t u, int k1, int k2) const {
  Complex s = 0;
  for (std::size_t i = 0; i < m1_; ++i) {
    for (std::size_t j = 0; j < m2_; ++j) {
      const Real ang =
          -kTwoPi * (static_cast<Real>(k1) * static_cast<Real>(i) /
                         static_cast<Real>(m1_) +
                     static_cast<Real>(k2) * static_cast<Real>(j) /
                         static_cast<Real>(m2_));
      s += at(u, i, j) * Complex(std::cos(ang), std::sin(ang));
    }
  }
  return s / static_cast<Real>(m1_ * m2_);
}

Real demoPulse(Real phase, Real edge) {
  Real p = phase - std::floor(phase);
  // Raised-cosine edges of width `edge`, high on [0, 0.5).
  auto smooth = [edge](Real d) {  // 0 → 1 over [0, edge]
    if (d <= 0) return 0.0;
    if (d >= edge) return 1.0;
    return 0.5 * (1.0 - std::cos(kPi * d / edge));
  };
  return smooth(p) * (1.0 - smooth(p - 0.5));
}

Real demoSignal(Real t, Real t1Period, Real t2Period) {
  return std::sin(kTwoPi * t / t1Period) * demoPulse(t / t2Period);
}

namespace {

// Max linear-interpolation error of f on a uniform n-sample periodic grid
// over [0, span), probed at refine× resolution.
Real interpError(const std::function<Real(Real)>& f, Real span, std::size_t n,
                 std::size_t refine = 8) {
  Real maxErr = 0;
  const Real h = span / static_cast<Real>(n);
  for (std::size_t i = 0; i < n; ++i) {
    const Real t0 = static_cast<Real>(i) * h;
    const Real v0 = f(t0), v1 = f(t0 + h);
    for (std::size_t r = 1; r < refine; ++r) {
      const Real w = static_cast<Real>(r) / static_cast<Real>(refine);
      const Real err = std::abs(f(t0 + w * h) - ((1 - w) * v0 + w * v1));
      maxErr = std::max(maxErr, err);
    }
  }
  return maxErr;
}

}  // namespace

std::size_t univariateSamplesNeeded(Real scaleSeparation, Real tol) {
  RFIC_REQUIRE(scaleSeparation >= 1 && tol > 0,
               "univariateSamplesNeeded: bad arguments");
  // One slow period T1 = scaleSeparation fast periods; sample y(t) directly.
  const Real T1 = scaleSeparation;  // with T2 = 1
  auto f = [T1](Real t) { return demoSignal(t, T1, 1.0); };
  std::size_t n = 16;
  while (interpError(f, T1, n) > tol) {
    n *= 2;
    RFIC_REQUIRE(n < (std::size_t{1} << 40),
                 "univariateSamplesNeeded: runaway refinement");
  }
  // Binary refine between n/2 and n for a tighter count.
  std::size_t lo = n / 2, hi = n;
  while (hi - lo > std::max<std::size_t>(1, hi / 64)) {
    const std::size_t mid = lo + (hi - lo) / 2;
    if (interpError(f, T1, mid) > tol)
      lo = mid;
    else
      hi = mid;
  }
  return hi;
}

std::size_t bivariateSamplesNeeded(Real tol) {
  RFIC_REQUIRE(tol > 0, "bivariateSamplesNeeded: bad tolerance");
  // Separable signal: error bounded by sum of per-axis interpolation
  // errors; find per-axis counts then report the product.
  auto slow = [](Real t) { return std::sin(kTwoPi * t); };
  auto fast = [](Real t) { return demoPulse(t); };
  std::size_t n1 = 4, n2 = 4;
  while (interpError(slow, 1.0, n1) > 0.5 * tol) n1 *= 2;
  while (interpError(fast, 1.0, n2) > 0.5 * tol) n2 *= 2;
  return n1 * n2;
}

Real bivariateReconstructionError(Real scaleSeparation, std::size_t m1,
                                  std::size_t m2) {
  const Real T1 = scaleSeparation, T2 = 1.0;
  BivariateGrid g(1, m1, m2, T1, T2);
  for (std::size_t i = 0; i < m1; ++i)
    for (std::size_t j = 0; j < m2; ++j)
      g.at(0, i, j) = std::sin(kTwoPi * g.t1(i) / T1) * demoPulse(g.t2(j) / T2);
  Real maxErr = 0;
  // Probe along the diagonal at irrational-ish offsets across several fast
  // periods spread over the slow period.
  const std::size_t probes = 4096;
  for (std::size_t k = 0; k < probes; ++k) {
    const Real t = T1 * (static_cast<Real>(k) + 0.382) /
                   static_cast<Real>(probes);
    maxErr = std::max(maxErr,
                      std::abs(demoSignal(t, T1, T2) -
                               g.evaluateUnivariate(0, t)));
  }
  return maxErr;
}

}  // namespace rfic::mpde
