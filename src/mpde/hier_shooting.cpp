#include "mpde/hier_shooting.hpp"

#include <cmath>

#include "mpde/envelope.hpp"

namespace rfic::mpde {

HSResult runHierarchicalShooting(const MnaSystem& sys, Real slowFreq,
                                 Real fastFreq, const numeric::RVec& dcOp,
                                 const HSOptions& opts) {
  RFIC_REQUIRE(slowFreq > 0 && fastFreq > 0,
               "runHierarchicalShooting: bad frequencies");
  const std::size_t n = sys.dim();
  const std::size_t m1 = opts.slowSteps;
  const std::size_t m2 = opts.fastSteps;
  const Real T1 = 1.0 / slowFreq;
  const Real h1 = T1 / static_cast<Real>(m1);

  HSResult res;
  res.grid = BivariateGrid(n, m1, m2, T1, 1.0 / fastFreq);

  // Starting waveform at t1 = 0: fast PSS with the slow drive frozen.
  FastPeriodicResult w0 = solveEnvelopeStep(sys, 0.0, fastFreq, m2, 0.0,
                                            nullptr, dcOp, opts.inner);
  if (!w0.converged) return res;
  std::vector<numeric::RVec> start = w0.waveform;

  std::vector<std::vector<numeric::RVec>> sweep(m1 + 1);
  for (std::size_t outer = 0; outer < opts.maxOuterIterations; ++outer) {
    ++res.outerIterations;
    // BE sweep over one slow period.
    sweep[0] = start;
    bool ok = true;
    for (std::size_t i = 1; i <= m1; ++i) {
      const Real t1 = h1 * static_cast<Real>(i);
      const FastPeriodicResult step = solveEnvelopeStep(
          sys, t1, fastFreq, m2, h1, &sweep[i - 1],
          outer == 0 ? sweep[i - 1][0]
                     : sweep[i].empty() ? sweep[i - 1][0] : sweep[i][0],
          opts.inner);
      if (!step.converged) {
        ok = false;
        break;
      }
      sweep[i] = step.waveform;
    }
    if (!ok) return res;

    // Slow-periodicity defect: the slow drive has period T1, so the end
    // waveform must reproduce the start waveform.
    Real defect = 0;
    for (std::size_t j = 0; j < m2; ++j) {
      numeric::RVec d = sweep[m1][j];
      d -= start[j];
      defect = std::max(defect, numeric::normInf(d));
    }
    res.periodicityDefect = defect;
    if (defect < opts.tolerance) {
      for (std::size_t i = 0; i < m1; ++i)
        for (std::size_t j = 0; j < m2; ++j)
          res.grid.setState(i, j, sweep[i][j]);
      res.converged = true;
      return res;
    }
    // Picard update of the starting waveform.
    start = sweep[m1];
  }
  return res;
}

}  // namespace rfic::mpde
