// Hierarchical Shooting (Section 2.2, method 1b).
//
// The generalization of shooting to two time scales: BE discretization
// along the slow axis (each step an inner fast-periodic shooting solve, the
// same building block TD-ENV uses), with the slow-axis periodicity
// x̂(0, ·) = x̂(T1, ·) enforced by an outer fixed-point sweep over the slow
// period. Appropriate, like MFDTD, for strongly nonlinear circuits with no
// sinusoidal waveform content.
#pragma once

#include "circuit/mna.hpp"
#include "mpde/bivariate.hpp"
#include "mpde/fast_system.hpp"

namespace rfic::mpde {

using circuit::MnaSystem;

struct HSOptions {
  std::size_t slowSteps = 16;  ///< BE steps per slow period
  std::size_t fastSteps = 100;
  std::size_t maxOuterIterations = 40;
  Real tolerance = 1e-7;  ///< on the slow-periodicity defect
  FastPeriodicOptions inner;
};

struct HSResult {
  bool converged = false;
  BivariateGrid grid;  ///< slowSteps × fastSteps biperiodic samples
  std::size_t outerIterations = 0;
  Real periodicityDefect = 0;
};

/// Quasi-periodic solve with slow fundamental `slowFreq` and fast
/// fundamental `fastFreq`.
HSResult runHierarchicalShooting(const MnaSystem& sys, Real slowFreq,
                                 Real fastFreq, const numeric::RVec& dcOp,
                                 const HSOptions& opts = {});

}  // namespace rfic::mpde
