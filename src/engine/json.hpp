// Minimal JSON support for the rficd newline-delimited protocol.
//
// The daemon's wire format is deliberately flat: every request and every
// event is one JSON object per line whose values are strings, numbers,
// booleans, or null — no nesting. That keeps the parser small enough to
// live here (the container images carry no JSON library, and the protocol
// carries netlists, not documents) while still being real JSON: any
// client-side json.dumps()/JSON.stringify of a flat object parses.
#pragma once

#include <map>
#include <string>

namespace rfic::engine {

/// Escape `s` for inclusion inside a JSON string literal (quotes not
/// included): ", \, control characters and non-ASCII-safe bytes < 0x20
/// become \-escapes.
std::string jsonEscape(const std::string& s);

/// Render a quoted JSON string: "\"" + jsonEscape(s) + "\"".
std::string jsonString(const std::string& s);

/// Parse one flat JSON object: {"key": value, ...} where value is a
/// string, number, true/false, or null. String values are unescaped
/// (including \uXXXX, encoded as UTF-8); numbers/booleans are stored as
/// their raw text; null stores an empty string. Returns false (and sets
/// *err when non-null) on malformed input or nested arrays/objects.
bool parseFlatJson(const std::string& text,
                   std::map<std::string, std::string>& out,
                   std::string* err = nullptr);

}  // namespace rfic::engine
