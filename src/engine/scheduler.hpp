// Scheduler: a priority job queue running admitted JobSpecs on its own
// worker threads, all sharing one Engine (and therefore one context pool,
// one perf::ThreadPool, one fft::PlanCache).
//
// Design points:
//
//  * Admission control — submit() refuses jobs (returns 0 and fills a
//    structured Rejection: QueueFull / ShuttingDown / SpecInvalid / Shed)
//    instead of queuing without bound. Each admitted job's RunBudget is
//    armed at admission, so its wall-clock limit covers queue wait too: a
//    job can expire mid-queue and is then finalized with exit code 4
//    without ever running. Pre-flight validation (engine::preflightCheck)
//    rejects empty, malformed, or over-cap netlists before they occupy a
//    worker.
//
//  * Priority classes with deterministic aging — one FIFO queue per
//    Priority class (high, normal, batch). Workers pop the highest
//    non-empty class, and every time a waiting lower class is passed over
//    its counter ticks; at Options::agingThreshold the starved class pops
//    next regardless (a promotion, counted in stats). The discipline is a
//    pure function of pop counts — no clocks — so dispatch order is
//    deterministic and testable. Running jobs are never preempted or
//    killed; priority acts only at pop time, and a job's *output* is
//    identical in every class (only its wait differs).
//
//  * Load shedding — once occupancy (queued + running) reaches
//    Options::highWater, batch-class submissions are refused with
//    RejectReason::Shed and stats() reports degraded=true, so well-behaved
//    clients (tools/rficd_client.py) back off before the queue saturates
//    for the interactive classes.
//
//  * Cooperative cancellation — cancel() trips the job's RunBudget
//    (requestCancel). A queued job is finalized immediately from the
//    cancelling thread; a running one unwinds at the engines' next budget
//    poll and finishes with exit code 5. There is no thread kill anywhere.
//
//  * Memory budgets — a spec's maxBytes arms the budget's MemAccount at
//    admission; the engine installs it on the job's thread, workspace grow
//    sites charge it, and a job that blows the cap unwinds with exit 6.
//
// Event delivery: the Scheduler emits Started and Finished itself and
// forwards everything the Engine streams in between. Events for one job
// arrive in order from one thread at a time, but a sink shared by several
// jobs sees interleaved calls from different workers — sinks serialize
// internally (engine/job.hpp).
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "diag/resilience.hpp"
#include "diag/thread_annotations.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"

namespace rfic::engine {

/// Status-listing view of one job (daemon `status` command, tests).
struct JobInfo {
  JobId id = 0;
  std::string label;
  JobState state = JobState::Queued;
  int exitCode = 0;  ///< valid once state is Done/Cancelled
};

/// Why submit() refused a job. None means the job was admitted.
enum class RejectReason {
  None = 0,
  QueueFull,     ///< occupancy reached Options::queueDepth
  ShuttingDown,  ///< shutdown() has begun; no further admissions
  SpecInvalid,   ///< pre-flight validation failed (exit-2-class input error)
  Shed,          ///< batch-class job refused above the high-water mark
};

/// Stable wire name: "queue-full", "shutting-down", "spec-invalid", "shed".
const char* toString(RejectReason r);

/// Structured refusal filled by submit() whenever it returns 0.
struct Rejection {
  RejectReason reason = RejectReason::None;
  std::string detail;  ///< human-readable specifics (preflight message, ...)
};

/// Queue gauges and lifetime counters (daemon `stats`, overload tests).
/// Gauges are a consistent snapshot under the scheduler lock.
struct SchedulerStats {
  std::size_t queued = 0;        ///< jobs waiting for a worker
  std::size_t running = 0;       ///< jobs on a worker right now
  std::size_t queueDepth = 0;    ///< Options::queueDepth (admission cap)
  std::size_t highWater = 0;     ///< Options::highWater (shed threshold)
  bool degraded = false;         ///< occupancy >= highWater right now
  Real maxQueueAgeSeconds = 0;   ///< longest current queue wait
  std::uint64_t submitted = 0;   ///< submit() calls, admitted or not
  std::uint64_t admitted = 0;
  std::uint64_t finished = 0;        ///< terminal events delivered
  std::uint64_t shed = 0;            ///< batch refusals above high water
  std::uint64_t rejectedFull = 0;    ///< refusals at queueDepth
  std::uint64_t rejectedInvalid = 0; ///< pre-flight refusals
  std::uint64_t promoted = 0;        ///< aging promotions (a starved class
                                     ///< popped ahead of a waiting higher one)
};

class Scheduler {
 public:
  struct Options {
    std::size_t workers = 1;     ///< concurrent jobs
    std::size_t queueDepth = 64; ///< admission cap: queued + running jobs
    /// Shed threshold: once occupancy reaches this, batch-class
    /// submissions are refused (RejectReason::Shed) and stats() reports
    /// degraded. 0 or > queueDepth → derived as 3/4 of queueDepth (min 1).
    std::size_t highWater = 0;
    /// Aging: a waiting lower-priority class passed over this many pops is
    /// dispatched next regardless of higher-priority arrivals. Pure pop
    /// counting — deterministic. 0 → default 8.
    std::size_t agingThreshold = 0;
    /// Cheap parse-only submit validation; zero caps leave only the
    /// always-on empty/malformed-netlist checks (engine::preflightCheck).
    PreflightLimits preflight;
    Engine::Options engine;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options opts);
  ~Scheduler();  ///< shutdown(): cancels everything and joins the workers

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a job: assigns and returns its JobId (>= 1), arms its RunBudget
  /// (wall/newton/krylov/memory) from the spec's limits, and queues it in
  /// its priority class. Returns 0 — admission refused — and fills
  /// `rejection` (when non-null) with the structured reason: the queue is
  /// at queueDepth, the scheduler is shutting down, pre-flight validation
  /// failed, or a batch job arrived above the high-water mark. `sink`
  /// receives the job's whole event stream (Started .. Finished) and is
  /// kept alive by the scheduler until the Finished event is delivered.
  JobId submit(JobSpec spec, std::shared_ptr<EventSink> sink,
               Rejection* rejection = nullptr) RFIC_EXCLUDES(mu_);

  /// Request cancellation. Queued jobs finalize immediately (Finished with
  /// exit 5 is emitted from this thread); running jobs unwind at their next
  /// budget poll. Returns false for unknown or already-finished jobs.
  bool cancel(JobId id) RFIC_EXCLUDES(mu_);

  std::optional<JobInfo> info(JobId id) RFIC_EXCLUDES(mu_);
  std::vector<JobInfo> list() RFIC_EXCLUDES(mu_);

  /// Consistent snapshot of queue gauges and lifetime counters.
  SchedulerStats stats() RFIC_EXCLUDES(mu_);

  /// Block until the job finishes and return its result. Throws
  /// InvalidArgument for an unknown id.
  JobResult wait(JobId id) RFIC_EXCLUDES(mu_);

  /// Block until every admitted job has finished.
  void drain() RFIC_EXCLUDES(mu_);

  /// Stop admitting, cancel every queued and running job, join the
  /// workers. Idempotent.
  void shutdown() RFIC_EXCLUDES(mu_);

  Engine& engine() { return engine_; }

 private:
  struct Entry {
    JobSpec spec;
    std::shared_ptr<EventSink> sink;
    JobState state = JobState::Queued;
    diag::RunBudget budget;  ///< armed at submit; cancel() trips it
    JobResult result;
    bool finished = false;  ///< result valid + Finished event delivered
    std::chrono::steady_clock::time_point enqueuedAt{};  ///< for queue age
  };

  static constexpr std::size_t kClasses = 3;  ///< one queue per Priority

  void workerLoop();
  /// Dispatch discipline: pop an aged lower class if one crossed the
  /// threshold (highest such class first), else the highest non-empty
  /// class; tick the passed-over counter of every waiting lower class.
  /// Returns 0 when every queue is empty.
  JobId popNextLocked() RFIC_REQUIRES(mu_);
  bool queuesEmptyLocked() const RFIC_REQUIRES(mu_);
  /// Emits (optionally a Stderr line and) Finished, then marks the entry
  /// done. Called with mu_ held and the entry's state already terminal;
  /// drops the lock around the sink calls (sinks may block on I/O).
  void finalize(Entry& e, JobResult result, diag::UniqueLock& lock,
                const std::string& stderrText = {}) RFIC_REQUIRES(mu_);

  Options opts_;
  Engine engine_;

  diag::Mutex mu_;
  std::condition_variable cvWork_;   ///< workers: queue became non-empty
  std::condition_variable cvDone_;   ///< waiters: some job finished
  std::map<JobId, std::unique_ptr<Entry>> jobs_ RFIC_GUARDED_BY(mu_);
  std::deque<JobId> queues_[kClasses] RFIC_GUARDED_BY(mu_);
  std::size_t passedOver_[kClasses] RFIC_GUARDED_BY(mu_) = {0, 0, 0};
  JobId nextId_ RFIC_GUARDED_BY(mu_) = 1;
  std::size_t active_ RFIC_GUARDED_BY(mu_) = 0;  ///< queued + running
  bool stop_ RFIC_GUARDED_BY(mu_) = false;
  // Lifetime counters surfaced by stats().
  std::uint64_t submitted_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t admitted_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t finished_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t shed_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t rejectedFull_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t rejectedInvalid_ RFIC_GUARDED_BY(mu_) = 0;
  std::uint64_t promoted_ RFIC_GUARDED_BY(mu_) = 0;

  // allow-detached-thread: scheduler workers, joined in shutdown().
  std::vector<std::thread> workers_;  // lint: allow-detached-thread (joined)
};

}  // namespace rfic::engine
