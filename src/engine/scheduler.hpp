// Scheduler: a FIFO job queue running admitted JobSpecs on its own worker
// threads, all sharing one Engine (and therefore one context pool, one
// perf::ThreadPool, one fft::PlanCache).
//
// Design points, in the order the ISSUE names them:
//
//  * Admission control — submit() rejects (returns 0) once
//    queued + running reaches Options::queueDepth, giving clients
//    immediate backpressure instead of an unbounded queue. Each job's
//    RunBudget is armed at admission, so its wall-clock limit covers queue
//    wait too: a job can expire mid-queue and is then finalized with exit
//    code 4 without ever running.
//
//  * Cooperative cancellation — cancel() trips the job's RunBudget
//    (requestCancel). A queued job is finalized immediately from the
//    cancelling thread; a running one unwinds at the engines' next budget
//    poll and finishes with exit code 5. There is no thread kill anywhere.
//
//  * FIFO fairness — workers pop strictly in submission order; a job's
//    threadShare limits how many perf::ThreadPool lanes its parallel
//    sections may occupy, so one wide job can't starve the queue.
//
// Event delivery: the Scheduler emits Started and Finished itself and
// forwards everything the Engine streams in between. Events for one job
// arrive in order from one thread at a time, but a sink shared by several
// jobs sees interleaved calls from different workers — sinks serialize
// internally (engine/job.hpp).
#pragma once

#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <thread>
#include <vector>

#include "diag/resilience.hpp"
#include "diag/thread_annotations.hpp"
#include "engine/engine.hpp"
#include "engine/job.hpp"

namespace rfic::engine {

/// Status-listing view of one job (daemon `status` command, tests).
struct JobInfo {
  JobId id = 0;
  std::string label;
  JobState state = JobState::Queued;
  int exitCode = 0;  ///< valid once state is Done/Cancelled
};

class Scheduler {
 public:
  struct Options {
    std::size_t workers = 1;     ///< concurrent jobs
    std::size_t queueDepth = 64; ///< admission cap: queued + running jobs
    Engine::Options engine;
  };

  Scheduler() : Scheduler(Options{}) {}
  explicit Scheduler(Options opts);
  ~Scheduler();  ///< shutdown(): cancels everything and joins the workers

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Admit a job: assigns and returns its JobId (>= 1), arms its RunBudget
  /// from the spec's limits, and queues it. Returns 0 — admission refused —
  /// when the queue is at queueDepth or the scheduler is shutting down.
  /// `sink` receives the job's whole event stream (Started .. Finished) and
  /// is kept alive by the scheduler until the Finished event is delivered.
  JobId submit(JobSpec spec, std::shared_ptr<EventSink> sink)
      RFIC_EXCLUDES(mu_);

  /// Request cancellation. Queued jobs finalize immediately (Finished with
  /// exit 5 is emitted from this thread); running jobs unwind at their next
  /// budget poll. Returns false for unknown or already-finished jobs.
  bool cancel(JobId id) RFIC_EXCLUDES(mu_);

  std::optional<JobInfo> info(JobId id) RFIC_EXCLUDES(mu_);
  std::vector<JobInfo> list() RFIC_EXCLUDES(mu_);

  /// Block until the job finishes and return its result. Throws
  /// InvalidArgument for an unknown id.
  JobResult wait(JobId id) RFIC_EXCLUDES(mu_);

  /// Block until every admitted job has finished.
  void drain() RFIC_EXCLUDES(mu_);

  /// Stop admitting, cancel every queued and running job, join the
  /// workers. Idempotent.
  void shutdown() RFIC_EXCLUDES(mu_);

  Engine& engine() { return engine_; }

 private:
  struct Entry {
    JobSpec spec;
    std::shared_ptr<EventSink> sink;
    JobState state = JobState::Queued;
    diag::RunBudget budget;  ///< armed at submit; cancel() trips it
    JobResult result;
    bool finished = false;  ///< result valid + Finished event delivered
  };

  void workerLoop();
  /// Emits (optionally a Stderr line and) Finished, then marks the entry
  /// done. Called with mu_ held and the entry's state already terminal;
  /// drops the lock around the sink calls (sinks may block on I/O).
  void finalize(Entry& e, JobResult result, diag::UniqueLock& lock,
                const std::string& stderrText = {}) RFIC_REQUIRES(mu_);

  Options opts_;
  Engine engine_;

  diag::Mutex mu_;
  std::condition_variable cvWork_;   ///< workers: queue became non-empty
  std::condition_variable cvDone_;   ///< waiters: some job finished
  std::map<JobId, std::unique_ptr<Entry>> jobs_ RFIC_GUARDED_BY(mu_);
  std::deque<JobId> fifo_ RFIC_GUARDED_BY(mu_);
  JobId nextId_ RFIC_GUARDED_BY(mu_) = 1;
  std::size_t active_ RFIC_GUARDED_BY(mu_) = 0;  ///< queued + running
  bool stop_ RFIC_GUARDED_BY(mu_) = false;

  // allow-detached-thread: scheduler workers, joined in shutdown().
  std::vector<std::thread> workers_;  // lint: allow-detached-thread (joined)
};

}  // namespace rfic::engine
