#include "engine/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <utility>

namespace rfic::engine {

const char* toString(RejectReason r) {
  switch (r) {
    case RejectReason::None: return "none";
    case RejectReason::QueueFull: return "queue-full";
    case RejectReason::ShuttingDown: return "shutting-down";
    case RejectReason::SpecInvalid: return "spec-invalid";
    case RejectReason::Shed: return "shed";
  }
  return "?";
}

Scheduler::Scheduler(Options opts) : opts_(opts), engine_(opts.engine) {
  if (opts_.workers == 0) opts_.workers = 1;
  if (opts_.queueDepth == 0) opts_.queueDepth = 1;
  if (opts_.highWater == 0 || opts_.highWater > opts_.queueDepth)
    opts_.highWater = std::max<std::size_t>(1, opts_.queueDepth * 3 / 4);
  if (opts_.agingThreshold == 0) opts_.agingThreshold = 8;
  workers_.reserve(opts_.workers);
  for (std::size_t i = 0; i < opts_.workers; ++i)
    // lint: allow-detached-thread — joined in shutdown()/~Scheduler.
    workers_.emplace_back([this] { workerLoop(); });
}

Scheduler::~Scheduler() { shutdown(); }

JobId Scheduler::submit(JobSpec spec, std::shared_ptr<EventSink> sink,
                        Rejection* rejection) {
  RFIC_REQUIRE(sink != nullptr, "Scheduler::submit: null sink");
  const auto refuse = [rejection](RejectReason why,
                                  std::string detail) -> JobId {
    if (rejection != nullptr) {
      rejection->reason = why;
      rejection->detail = std::move(detail);
    }
    return 0;
  };
  // Pre-flight outside the lock: a pure function of the spec, and the
  // point is to refuse garbage before it costs anyone anything.
  std::string preflight = preflightCheck(spec.netlist, opts_.preflight);

  diag::UniqueLock lock(mu_);
  ++submitted_;
  if (stop_)
    return refuse(RejectReason::ShuttingDown, "scheduler is shutting down");
  if (!preflight.empty()) {
    ++rejectedInvalid_;
    return refuse(RejectReason::SpecInvalid, std::move(preflight));
  }
  if (active_ >= opts_.queueDepth) {
    ++rejectedFull_;
    return refuse(RejectReason::QueueFull,
                  "queue at capacity (" + std::to_string(opts_.queueDepth) +
                      " jobs)");
  }
  // Graceful degradation: above the high-water mark only the interactive
  // classes are admitted; batch work is the first load shed.
  if (spec.priority == Priority::Batch && active_ >= opts_.highWater) {
    ++shed_;
    return refuse(RejectReason::Shed,
                  "overloaded: batch jobs shed above high-water mark (" +
                      std::to_string(opts_.highWater) + "), retry with backoff");
  }
  const JobId id = nextId_++;
  spec.id = id;
  auto e = std::make_unique<Entry>();
  e->spec = std::move(spec);
  e->sink = std::move(sink);
  // The budget is armed at admission, not at start: a wall-clock limit
  // covers time spent waiting in the queue as well, so a stale job can
  // expire mid-queue and never occupy a worker.
  if (e->spec.timeoutSeconds > 0)
    e->budget.setWallLimit(e->spec.timeoutSeconds);
  if (e->spec.newtonLimit > 0) e->budget.setNewtonLimit(e->spec.newtonLimit);
  if (e->spec.krylovLimit > 0) e->budget.setKrylovLimit(e->spec.krylovLimit);
  if (e->spec.maxBytes > 0) e->budget.setMemoryLimit(e->spec.maxBytes);
  e->enqueuedAt = std::chrono::steady_clock::now();
  const auto cls = static_cast<std::size_t>(e->spec.priority);
  RFIC_REQUIRE(cls < kClasses, "Scheduler::submit: bad priority");
  jobs_.emplace(id, std::move(e));
  queues_[cls].push_back(id);
  ++active_;
  ++admitted_;
  cvWork_.notify_one();
  return id;
}

bool Scheduler::cancel(JobId id) {
  diag::UniqueLock lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return false;
  Entry& e = *it->second;
  if (e.finished || e.state == JobState::Done ||
      e.state == JobState::Cancelled)
    return false;
  e.budget.requestCancel();
  if (e.state == JobState::Running) return true;  // unwinds at next poll
  // Queued: finalize right here so the client hears promptly instead of
  // waiting for a worker to drain down to this entry.
  e.state = JobState::Cancelled;
  JobResult res;
  res.exitCode = 5;
  res.cancelled = true;
  res.error = "cancelled while queued";
  finalize(e, std::move(res), lock, "job cancelled while queued\n");
  return true;
}

std::optional<JobInfo> Scheduler::info(JobId id) {
  diag::LockGuard lock(mu_);
  const auto it = jobs_.find(id);
  if (it == jobs_.end()) return std::nullopt;
  const Entry& e = *it->second;
  return JobInfo{id, e.spec.label, e.state, e.result.exitCode};
}

std::vector<JobInfo> Scheduler::list() {
  diag::LockGuard lock(mu_);
  std::vector<JobInfo> out;
  out.reserve(jobs_.size());
  for (const auto& [id, ep] : jobs_)
    out.push_back(JobInfo{id, ep->spec.label, ep->state,
                          ep->result.exitCode});
  return out;
}

SchedulerStats Scheduler::stats() {
  diag::LockGuard lock(mu_);
  SchedulerStats s;
  s.queueDepth = opts_.queueDepth;
  s.highWater = opts_.highWater;
  const auto now = std::chrono::steady_clock::now();
  for (const auto& q : queues_) {
    for (const JobId id : q) {
      // Queue slots of cancelled/expired entries (finalized in place, id
      // left for the workers to skip) don't count as waiting jobs.
      const auto it = jobs_.find(id);
      if (it == jobs_.end() || it->second->state != JobState::Queued)
        continue;
      ++s.queued;
      const Real age =
          std::chrono::duration<Real>(now - it->second->enqueuedAt).count();
      if (age > s.maxQueueAgeSeconds) s.maxQueueAgeSeconds = age;
    }
  }
  s.running = active_ >= s.queued ? active_ - s.queued : 0;
  s.degraded = active_ >= opts_.highWater;
  s.submitted = submitted_;
  s.admitted = admitted_;
  s.finished = finished_;
  s.shed = shed_;
  s.rejectedFull = rejectedFull_;
  s.rejectedInvalid = rejectedInvalid_;
  s.promoted = promoted_;
  return s;
}

JobResult Scheduler::wait(JobId id) {
  diag::UniqueLock lock(mu_);
  const auto it = jobs_.find(id);
  RFIC_REQUIRE(it != jobs_.end(), "Scheduler::wait: unknown job id");
  Entry& e = *it->second;
  while (!e.finished) cvDone_.wait(lock.native());
  return e.result;
}

void Scheduler::drain() {
  diag::UniqueLock lock(mu_);
  while (active_ != 0) cvDone_.wait(lock.native());
}

void Scheduler::shutdown() {
  {
    diag::UniqueLock lock(mu_);
    stop_ = true;  // no further submissions; workers exit once fifo_ drains
    // jobs_ is never erased from and stop_ blocks inserts, so iterating
    // while finalize() drops the lock per entry is safe; a concurrent
    // cancel() of the same entry loses the state race and backs off.
    for (auto& [id, ep] : jobs_) {
      Entry& e = *ep;
      if (e.finished || e.state == JobState::Done ||
          e.state == JobState::Cancelled)
        continue;
      e.budget.requestCancel();
      if (e.state != JobState::Queued) continue;  // running: unwinds itself
      e.state = JobState::Cancelled;
      JobResult res;
      res.exitCode = 5;
      res.cancelled = true;
      res.error = "cancelled: scheduler shutdown";
      finalize(e, std::move(res), lock, "job cancelled: scheduler shutdown\n");
    }
    cvWork_.notify_all();
  }
  for (auto& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
}

void Scheduler::finalize(Entry& e, JobResult result, diag::UniqueLock& lock,
                         const std::string& stderrText) {
  e.result = std::move(result);
  std::shared_ptr<EventSink> sink = std::move(e.sink);
  Event fin;
  fin.kind = Event::Kind::Finished;
  fin.job = e.spec.id;
  fin.result = e.result;
  // Deliver outside the lock: a sink may block on socket I/O, and holding
  // mu_ there would stall every worker and submit(). The entry stays valid
  // (jobs_ never erases) and no other thread touches it while its state is
  // already terminal and `finished` is still false.
  lock.native().unlock();
  if (sink) {
    if (!stderrText.empty()) {
      Event se;
      se.kind = Event::Kind::Stderr;
      se.job = fin.job;
      se.text = stderrText;
      sink->onEvent(se);
    }
    sink->onEvent(fin);
  }
  lock.native().lock();
  e.finished = true;
  --active_;
  ++finished_;
  cvDone_.notify_all();
}

bool Scheduler::queuesEmptyLocked() const {
  for (const auto& q : queues_)
    if (!q.empty()) return false;
  return true;
}

JobId Scheduler::popNextLocked() {
  // An aged class preempts: the highest-priority waiting class whose
  // passed-over counter crossed the threshold pops first.
  std::size_t pick = kClasses;
  bool aged = false;
  for (std::size_t c = 1; c < kClasses; ++c) {
    if (!queues_[c].empty() && passedOver_[c] >= opts_.agingThreshold) {
      pick = c;
      aged = true;
      break;
    }
  }
  if (!aged) {
    for (std::size_t c = 0; c < kClasses; ++c) {
      if (!queues_[c].empty()) {
        pick = c;
        break;
      }
    }
  }
  if (pick == kClasses) return 0;
  if (aged) {
    // A promotion only if the aged pop actually jumped a waiting higher
    // class — otherwise it was next in line anyway.
    for (std::size_t c = 0; c < pick; ++c) {
      if (!queues_[c].empty()) {
        ++promoted_;
        break;
      }
    }
  }
  const JobId id = queues_[pick].front();
  queues_[pick].pop_front();
  passedOver_[pick] = 0;  // the class's head advanced; restart its clock
  for (std::size_t c = pick + 1; c < kClasses; ++c)
    if (!queues_[c].empty()) ++passedOver_[c];
  return id;
}

void Scheduler::workerLoop() {
  for (;;) {
    Entry* e = nullptr;
    std::shared_ptr<EventSink> sink;
    {
      diag::UniqueLock lock(mu_);
      while (!stop_ && queuesEmptyLocked()) cvWork_.wait(lock.native());
      const JobId id = popNextLocked();
      if (id == 0) return;  // stop_ set and nothing left to drain
      const auto it = jobs_.find(id);
      if (it == jobs_.end()) continue;
      e = it->second.get();
      if (e->state != JobState::Queued) continue;  // cancelled while queued
      if (diag::budgetExceeded(&e->budget) && !e->budget.cancelled()) {
        // Expired while waiting in the queue: never run it.
        e->state = JobState::Done;
        JobResult res;
        res.exitCode = e->budget.memoryExceeded() ? 6 : 4;
        res.error = std::string("budget exceeded while queued (") +
                    e->budget.reason() + ")";
        finalize(*e, std::move(res), lock,
                 std::string("budget exceeded while queued (") +
                     e->budget.reason() + ")\n");
        continue;
      }
      e->state = JobState::Running;
      sink = e->sink;  // keep alive across the run without the lock
    }

    Event started;
    started.kind = Event::Kind::Started;
    started.job = e->spec.id;
    sink->onEvent(started);

    JobResult res = engine_.run(e->spec, *sink, &e->budget);

    {
      diag::UniqueLock lock(mu_);
      e->state = res.cancelled ? JobState::Cancelled : JobState::Done;
      finalize(*e, std::move(res), lock);
    }
  }
}

}  // namespace rfic::engine
