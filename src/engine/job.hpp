// Job model of the simulation engine: what a client submits (JobSpec),
// what an execution produces (JobResult), and the event stream in between.
//
// The engine layer splits the old rficsim monolith along the seam the
// ROADMAP's "simulation-as-a-service" item names: a *job* is one netlist
// plus its analysis cards plus per-job isolation settings (RunBudget
// limits, a cooperative thread share), and executing a job yields a stream
// of Events — progress, rendered output chunks, a final structured result —
// instead of printf calls scattered through a main(). rficsim is now a
// thin client that replays the event stream onto stdout/stderr; rficd
// serializes the same stream as newline-delimited JSON over a socket.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common.hpp"
#include "diag/convergence.hpp"
#include "perf/perf.hpp"

namespace rfic::engine {

using JobId = std::uint64_t;

/// Scheduling class of a job. The Scheduler keeps one FIFO queue per
/// class; High pops before Normal before Batch at dispatch time, with
/// deterministic aging so lower classes are never starved, and Batch is
/// the first class shed when the queue crosses its high-water mark
/// (scheduler.hpp has the full semantics). Running jobs are never
/// preempted — priority acts only at pop time.
enum class Priority : int { High = 0, Normal = 1, Batch = 2 };

/// Stable wire name: "high", "normal", "batch".
const char* toString(Priority p);
/// Parse a wire name; false (out untouched) for anything unrecognized.
bool parsePriority(const std::string& s, Priority& out);

/// One simulation request. The netlist text carries both the element cards
/// and the analysis control cards (.op/.tran/.ac/.noise/.hb/.print), same
/// dialect as the rficsim CLI; the remaining fields are the per-job
/// isolation contract a multi-tenant server needs.
struct JobSpec {
  JobId id = 0;           ///< assigned by the Scheduler; 0 for direct runs
  std::string label;      ///< client-chosen tag echoed in status listings
  std::string netlist;    ///< full netlist text (elements + analysis cards)

  /// Scheduling class (see Priority above). Affects only dispatch order
  /// and shedding — a job's output is bitwise identical in every class.
  Priority priority = Priority::Normal;

  // --- per-job RunBudget ----------------------------------------------
  Real timeoutSeconds = 0;        ///< wall-clock budget (0 = none)
  std::uint64_t newtonLimit = 0;  ///< total Newton iterations (0 = none)
  std::uint64_t krylovLimit = 0;  ///< total Krylov iterations (0 = none)
  /// Workspace byte budget (diag::MemAccount; 0 = none). A job whose
  /// grow-once workspaces charge past this unwinds cooperatively with
  /// exit code 6 — the allocation itself never fails.
  std::uint64_t maxBytes = 0;

  /// Cooperative thread share: max perf::ThreadPool lanes (caller +
  /// workers) this job's parallel sections may occupy; 0 = uncapped, 1 =
  /// fully inline. Enforced via ThreadPool::ScopedLaneCap for the duration
  /// of the job.
  std::size_t threadShare = 0;

  /// Sparse-LU pivot pre-ordering for this job: "natural", "amd", or ""
  /// for the process default (sparse::ScopedOrderingOverride for the
  /// duration of the job). Unrecognized values reject the job with exit
  /// code 2 before any analysis runs.
  std::string ordering;

  // --- CLI passthrough (unused by the daemon) -------------------------
  std::string checkpointPath;  ///< transient checkpoint file ("" = off)
  bool resume = false;         ///< resume from checkpointPath
};

/// Structured summary of one executed analysis card. Full tabular output
/// (waveforms, sweeps, spectra) travels in the rendered Stdout events; this
/// struct carries the machine-readable headline a queue client needs to
/// triage a job without parsing text.
struct AnalysisOutcome {
  std::string card;     ///< ".op", ".tran", ".ac", ".noise", ".hb"
  std::string summary;  ///< the one-line "* .tran ..." header text
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  bool ok = false;
};

/// Final state of a job, mirrored by Scheduler bookkeeping and the daemon's
/// status command.
enum class JobState { Queued, Running, Done, Cancelled };

const char* toString(JobState s);

/// What Engine::run returns (and the Finished event carries).
struct JobResult {
  /// Same contract as the rficsim process exit codes: 0 ok, 1 usage/parse/
  /// internal error, 2 bad cards or unknown nodes, 3 HB non-convergence,
  /// 4 budget expiry, 5 cancelled, 6 memory-budget expiry (maxBytes).
  int exitCode = 0;
  bool cancelled = false;
  /// Peak workspace bytes charged against the job's diag::MemAccount
  /// (0 when the job never grew a budget-tracked workspace).
  std::uint64_t peakBytes = 0;
  /// Set when the job failed before or outside analysis execution (parse
  /// error, no analysis cards, ...): the rendered diagnostic.
  std::string error;
  std::vector<AnalysisOutcome> analyses;
  perf::Snapshot perf;  ///< this job's counters (CounterScope-attributed)
};

/// One element of a job's event stream, delivered in order.
struct Event {
  enum class Kind {
    Started,       ///< job picked up by a worker (Scheduler-emitted)
    Stdout,        ///< rendered output chunk — exactly what rficsim prints
    Stderr,        ///< rendered diagnostic chunk (budget expiry, errors)
    AnalysisDone,  ///< one analysis card finished; `analysis` is filled
    Finished,      ///< terminal: `result` is filled (Scheduler-emitted)
  };

  Kind kind;
  JobId job = 0;
  std::string text;          ///< Stdout / Stderr payload
  AnalysisOutcome analysis;  ///< AnalysisDone payload
  JobResult result;          ///< Finished payload
};

/// Receiver of a job's event stream. Implementations must tolerate calls
/// from whichever worker thread runs the job; one sink may serve multiple
/// jobs concurrently (the daemon uses one sink per connection), so
/// implementations serialize internally as needed.
class EventSink {
 public:
  virtual ~EventSink() = default;
  virtual void onEvent(const Event& e) = 0;
};

/// Sink that discards everything (benches that only want JobResults).
class NullSink : public EventSink {
 public:
  void onEvent(const Event&) override {}
};

}  // namespace rfic::engine
