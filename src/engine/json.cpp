#include "engine/json.hpp"

#include <cstdio>

namespace rfic::engine {

namespace {

void setErr(std::string* err, const char* what, std::size_t pos) {
  if (err == nullptr) return;
  char buf[128];
  std::snprintf(buf, sizeof buf, "%s at offset %zu", what, pos);
  *err = buf;
}

void skipWs(const std::string& s, std::size_t& i) {
  while (i < s.size() && (s[i] == ' ' || s[i] == '\t' || s[i] == '\n' ||
                          s[i] == '\r'))
    ++i;
}

int hexVal(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

void appendUtf8(std::string& out, unsigned cp) {
  if (cp < 0x80) {
    out += static_cast<char>(cp);
  } else if (cp < 0x800) {
    out += static_cast<char>(0xC0 | (cp >> 6));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  } else {
    out += static_cast<char>(0xE0 | (cp >> 12));
    out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
    out += static_cast<char>(0x80 | (cp & 0x3F));
  }
}

bool parseString(const std::string& s, std::size_t& i, std::string& out,
                 std::string* err) {
  if (i >= s.size() || s[i] != '"') {
    setErr(err, "expected '\"'", i);
    return false;
  }
  ++i;
  out.clear();
  while (i < s.size()) {
    const char c = s[i];
    if (c == '"') {
      ++i;
      return true;
    }
    if (c == '\\') {
      if (i + 1 >= s.size()) {
        setErr(err, "truncated escape", i);
        return false;
      }
      const char e = s[i + 1];
      i += 2;
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (i + 4 > s.size()) {
            setErr(err, "truncated \\u escape", i);
            return false;
          }
          unsigned cp = 0;
          for (int k = 0; k < 4; ++k) {
            const int v = hexVal(s[i + static_cast<std::size_t>(k)]);
            if (v < 0) {
              setErr(err, "bad hex digit in \\u escape", i);
              return false;
            }
            cp = cp * 16 + static_cast<unsigned>(v);
          }
          i += 4;
          // Surrogate pairs are out of scope for this protocol (netlists
          // are ASCII); map any surrogate to U+FFFD instead of garbage.
          if (cp >= 0xD800 && cp <= 0xDFFF) cp = 0xFFFD;
          appendUtf8(out, cp);
          break;
        }
        default:
          setErr(err, "unknown escape", i - 1);
          return false;
      }
      continue;
    }
    out += c;
    ++i;
  }
  setErr(err, "unterminated string", i);
  return false;
}

bool parseScalar(const std::string& s, std::size_t& i, std::string& out,
                 std::string* err) {
  skipWs(s, i);
  if (i >= s.size()) {
    setErr(err, "expected value", i);
    return false;
  }
  if (s[i] == '"') return parseString(s, i, out, err);
  if (s[i] == '{' || s[i] == '[') {
    setErr(err, "nested values not supported (flat protocol)", i);
    return false;
  }
  const std::size_t start = i;
  while (i < s.size() && s[i] != ',' && s[i] != '}' && s[i] != ' ' &&
         s[i] != '\t' && s[i] != '\n' && s[i] != '\r')
    ++i;
  out = s.substr(start, i - start);
  if (out.empty()) {
    setErr(err, "expected value", start);
    return false;
  }
  if (out == "null") out.clear();
  return true;
}

}  // namespace

std::string jsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (const char c : s) {
    const unsigned char u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string jsonString(const std::string& s) {
  return "\"" + jsonEscape(s) + "\"";
}

bool parseFlatJson(const std::string& text,
                   std::map<std::string, std::string>& out,
                   std::string* err) {
  out.clear();
  std::size_t i = 0;
  skipWs(text, i);
  if (i >= text.size() || text[i] != '{') {
    setErr(err, "expected '{'", i);
    return false;
  }
  ++i;
  skipWs(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
    skipWs(text, i);
    return i >= text.size();
  }
  for (;;) {
    skipWs(text, i);
    std::string key;
    if (!parseString(text, i, key, err)) return false;
    skipWs(text, i);
    if (i >= text.size() || text[i] != ':') {
      setErr(err, "expected ':'", i);
      return false;
    }
    ++i;
    std::string value;
    if (!parseScalar(text, i, value, err)) return false;
    out[key] = std::move(value);
    skipWs(text, i);
    if (i >= text.size()) {
      setErr(err, "unterminated object", i);
      return false;
    }
    if (text[i] == ',') {
      ++i;
      continue;
    }
    if (text[i] == '}') {
      ++i;
      skipWs(text, i);
      if (i < text.size()) {
        setErr(err, "trailing characters", i);
        return false;
      }
      return true;
    }
    setErr(err, "expected ',' or '}'", i);
    return false;
  }
}

}  // namespace rfic::engine
