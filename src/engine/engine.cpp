#include "engine/engine.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdarg>
#include <cstdio>
#include <optional>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "analysis/ac.hpp"
#include "analysis/dc.hpp"
#include "analysis/noise.hpp"
#include "analysis/transient.hpp"
#include "circuit/netlist.hpp"
#include "circuit/sources.hpp"
#include "hb/harmonic_balance.hpp"
#include "hb/spectrum.hpp"
#include "perf/perf.hpp"
#include "perf/thread_pool.hpp"
#include "sparse/ordering.hpp"

namespace rfic::engine {

const char* toString(JobState s) {
  switch (s) {
    case JobState::Queued: return "queued";
    case JobState::Running: return "running";
    case JobState::Done: return "done";
    case JobState::Cancelled: return "cancelled";
  }
  return "?";
}

const char* toString(Priority p) {
  switch (p) {
    case Priority::High: return "high";
    case Priority::Normal: return "normal";
    case Priority::Batch: return "batch";
  }
  return "?";
}

bool parsePriority(const std::string& s, Priority& out) {
  if (s == "high") {
    out = Priority::High;
  } else if (s == "normal") {
    out = Priority::Normal;
  } else if (s == "batch") {
    out = Priority::Batch;
  } else {
    return false;
  }
  return true;
}

namespace {

#if defined(__GNUC__) || defined(__clang__)
#define RFIC_PRINTF_ARGS(fmtIdx, firstArg) \
  __attribute__((format(printf, fmtIdx, firstArg)))
#else
#define RFIC_PRINTF_ARGS(fmtIdx, firstArg)
#endif

void vappendf(std::string& dst, const char* fmt, va_list ap) {
  va_list ap2;
  va_copy(ap2, ap);
  const int need = std::vsnprintf(nullptr, 0, fmt, ap2);
  va_end(ap2);
  if (need <= 0) return;
  const std::size_t base = dst.size();
  dst.resize(base + static_cast<std::size_t>(need) + 1);
  std::vsnprintf(&dst[base], static_cast<std::size_t>(need) + 1, fmt, ap);
  dst.resize(base + static_cast<std::size_t>(need));
}

RFIC_PRINTF_ARGS(1, 2) std::string strprintf(const char* fmt, ...) {
  std::string s;
  va_list ap;
  va_start(ap, fmt);
  vappendf(s, fmt, ap);
  va_end(ap);
  return s;
}

/// Renders the job's textual output into Stdout/Stderr events, preserving
/// the exact bytes (and the stdout/stderr interleaving) the monolithic CLI
/// produced with printf/fprintf. Stdout text is coalesced until a flush
/// point (a stderr line, an analysis boundary, or job end) so the event
/// stream stays coarse-grained.
class Renderer {
 public:
  Renderer(EventSink& sink, JobId id) : sink_(sink), id_(id) {}
  ~Renderer() { flush(); }

  RFIC_PRINTF_ARGS(2, 3) void outf(const char* fmt, ...) {
    va_list ap;
    va_start(ap, fmt);
    vappendf(pending_, fmt, ap);
    va_end(ap);
  }

  RFIC_PRINTF_ARGS(2, 3) void errf(const char* fmt, ...) {
    flush();  // keep relative stdout/stderr order for merged-stream clients
    std::string s;
    va_list ap;
    va_start(ap, fmt);
    vappendf(s, fmt, ap);
    va_end(ap);
    emit(Event::Kind::Stderr, std::move(s));
  }

  void flush() {
    if (pending_.empty()) return;
    std::string s;
    s.swap(pending_);
    emit(Event::Kind::Stdout, std::move(s));
  }

  void analysisDone(const AnalysisOutcome& a) {
    flush();
    Event e;
    e.kind = Event::Kind::AnalysisDone;
    e.job = id_;
    e.analysis = a;
    sink_.onEvent(e);
  }

 private:
  void emit(Event::Kind kind, std::string text) {
    if (text.empty()) return;
    Event e;
    e.kind = kind;
    e.job = id_;
    e.text = std::move(text);
    sink_.onEvent(e);
  }

  EventSink& sink_;
  JobId id_;
  std::string pending_;
};

std::vector<std::string> splitTokens(const std::string& line) {
  std::istringstream in(line);
  std::vector<std::string> toks;
  std::string t;
  while (in >> t) toks.push_back(t);
  return toks;
}

std::string lowered(std::string s) {
  for (auto& ch : s)
    ch = static_cast<char>(std::tolower(static_cast<unsigned char>(ch)));
  return s;
}

bool isAnalysisHead(const std::string& head) {
  return head == ".op" || head == ".tran" || head == ".ac" ||
         head == ".noise" || head == ".hb" || head == ".print" ||
         head == ".end";
}

/// The ported body of the old rficsim runFile(): runs every analysis card
/// against an acquired context, renders byte-identical output, and fills
/// the structured per-analysis outcomes. Returns the process exit code.
int runCards(const JobSpec& spec, circuit::Circuit& ckt,
             circuit::MnaSystem& sys, circuit::MnaWorkspace& ws,
             diag::RunBudget* budget, Renderer& r, JobResult& res) {
  // Solvers report a generic BudgetExceeded; refine it to the memory
  // flavor (and exit code 6) when the trip came from the byte budget.
  // Non-budgeted jobs never take these paths, so rendered output stays
  // byte-identical to the pre-memory-budget engine.
  const auto effStatus = [budget](diag::SolverStatus st) {
    return st == diag::SolverStatus::BudgetExceeded &&
                   budget->memoryExceeded()
               ? diag::SolverStatus::BudgetExceededMemory
               : st;
  };
  const auto budgetExit = [budget]() {
    return budget->cancelled() ? 5 : budget->memoryExceeded() ? 6 : 4;
  };
  // Collect analysis and print cards (parseNetlist ignores them).
  struct Card {
    std::vector<std::string> tokens;
  };
  std::vector<Card> cards;
  std::vector<std::string> printNodes;
  {
    std::istringstream in(spec.netlist);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] != '.') continue;
      auto toks = splitTokens(line);
      if (toks.empty()) continue;
      const std::string head = lowered(toks[0]);
      if (head == ".model" || head == ".end") continue;
      if (head == ".print") {
        printNodes.assign(toks.begin() + 1, toks.end());
        continue;
      }
      toks[0] = head;
      cards.push_back({std::move(toks)});
    }
  }
  if (cards.empty()) {
    res.error = "no analysis cards";
    r.errf("no analysis cards (.op/.tran/.ac/.noise/.hb)\n");
    return 2;
  }

  // Output selection. Unknown or ground nodes in .print are a usage error
  // (exit 2) with a diagnostic naming the card — the old CLI either threw
  // (unknown → exit 1) or indexed out of bounds (ground alias → UB).
  std::vector<std::pair<std::string, std::size_t>> outs;
  if (printNodes.empty()) {
    for (std::size_t i = 0; i < sys.dim(); ++i)
      outs.emplace_back(ckt.unknownName(i), i);
  } else {
    for (const auto& name : printNodes) {
      const int id = ckt.lookupNode(name);
      if (id == circuit::Circuit::kNoSuchNode) {
        res.error = ".print: unknown node '" + name + "'";
        r.errf(".print: unknown node '%s' (not in the netlist)\n",
              name.c_str());
        return 2;
      }
      if (id == circuit::Circuit::kGround) {
        res.error = ".print: node '" + name + "' is ground";
        r.errf(".print: node '%s' is ground (identically 0 V, not an "
              "unknown)\n",
              name.c_str());
        return 2;
      }
      outs.emplace_back("V(" + name + ")", static_cast<std::size_t>(id));
    }
  }

  analysis::DCOptions dco;
  dco.budget = budget;
  dco.workspace = &ws;
  const auto dc = analysis::dcOperatingPoint(sys, dco);
  if (dc.status == diag::SolverStatus::BudgetExceeded) {
    if (budget->cancelled()) {
      r.errf("job cancelled during .op\n");
      return 5;
    }
    r.errf("budget exceeded during .op (%s)\n", budget->reason());
    return budgetExit();
  }

  for (const auto& card : cards) {
    const auto& t = card.tokens;
    if (budget->cancelled()) {
      r.errf("job cancelled\n");
      return 5;
    }
    if (t[0] == ".op") {
      AnalysisOutcome a;
      a.card = ".op";
      a.summary = strprintf("* .op (%s, %zu iterations)", dc.strategy.c_str(),
                            dc.iterations);
      a.status = dc.status;
      a.ok = dc.converged;
      r.outf("%s\n", a.summary.c_str());
      for (const auto& [name, idx] : outs)
        r.outf("%-14s %16.9e\n", name.c_str(), dc.x[idx]);
      res.analyses.push_back(a);
      r.analysisDone(a);
    } else if (t[0] == ".tran" && t.size() >= 3) {
      analysis::TransientOptions to;
      to.dt = circuit::parseSpiceNumber(t[1]);
      to.tstop = circuit::parseSpiceNumber(t[2]);
      to.workspace = &ws;
      to.budget = budget;
      to.checkpointPath = spec.checkpointPath;
      if (!spec.checkpointPath.empty()) to.checkpointInterval = 30.0;
      to.resume = spec.resume;
      const auto tr = analysis::runTransient(sys, dc.x, to);
      AnalysisOutcome a;
      a.card = ".tran";
      a.status = effStatus(tr.status);
      a.summary = strprintf(
          "* .tran dt=%g tstop=%g ok=%d status=%s steps=%zu retries=%zu",
          to.dt, to.tstop, tr.ok ? 1 : 0, diag::toString(a.status), tr.steps,
          tr.retries);
      a.ok = tr.ok;
      r.outf("%s\n", a.summary.c_str());
      r.outf("%-16s", "time");
      for (const auto& [name, idx] : outs) r.outf(" %-14s", name.c_str());
      r.outf("\n");
      const std::size_t stride = std::max<std::size_t>(1, tr.time.size() / 50);
      for (std::size_t k = 0; k < tr.time.size(); k += stride) {
        r.outf("%-16.8e", tr.time[k]);
        for (const auto& [name, idx] : outs) r.outf(" %-14.6e", tr.x[k][idx]);
        r.outf("\n");
      }
      res.analyses.push_back(a);
      r.analysisDone(a);
      if (tr.status == diag::SolverStatus::BudgetExceeded) {
        if (budget->cancelled()) {
          r.errf("job cancelled during .tran%s\n",
                spec.checkpointPath.empty() ? "" : "; checkpoint saved");
          return 5;
        }
        r.errf("budget exceeded during .tran (%s)%s\n", budget->reason(),
              spec.checkpointPath.empty() ? "" : "; checkpoint saved");
        return budgetExit();
      }
    } else if (t[0] == ".ac" && t.size() >= 5) {
      const auto pts =
          static_cast<std::size_t>(circuit::parseSpiceNumber(t[2]));
      const Real f0 = circuit::parseSpiceNumber(t[3]);
      const Real f1 = circuit::parseSpiceNumber(t[4]);
      const Real decades = std::log10(f1 / f0);
      const auto freqs = analysis::logspace(
          f0, f1,
          std::max<std::size_t>(
              2, static_cast<std::size_t>(std::lround(pts * decades)) + 1));
      // Drive through the first voltage source in the netlist.
      const circuit::VSource* src = nullptr;
      for (const auto& dev : ckt.devices())
        if ((src = dynamic_cast<const circuit::VSource*>(dev.get()))) break;
      if (!src) {
        res.error = ".ac: no voltage source to drive";
        r.errf(".ac: no voltage source to drive\n");
        return 2;
      }
      const auto sweep = analysis::acSweep(
          sys, dc.x, freqs, analysis::acStimulusVSource(sys, *src));
      AnalysisOutcome a;
      a.card = ".ac";
      a.summary = strprintf("* .ac %zu points (driving %s)", freqs.size(),
                            src->name().c_str());
      a.status = diag::SolverStatus::Converged;
      a.ok = true;
      r.outf("%s\n", a.summary.c_str());
      r.outf("%-16s", "freq");
      for (const auto& [name, idx] : outs)
        r.outf(" %-14s %-10s", ("|" + name + "|").c_str(), "phase");
      r.outf("\n");
      for (std::size_t k = 0; k < freqs.size(); ++k) {
        r.outf("%-16.8e", freqs[k]);
        for (const auto& [name, idx] : outs) {
          const Complex v = sweep.x[k][idx];
          r.outf(" %-14.6e %-10.3f", std::abs(v), std::arg(v) * 180.0 / kPi);
        }
        r.outf("\n");
      }
      res.analyses.push_back(a);
      r.analysisDone(a);
    } else if (t[0] == ".noise" && t.size() >= 6) {
      const int node = ckt.lookupNode(t[1]);
      if (node < 0) {
        res.error = ".noise: unknown or ground node '" + t[1] + "'";
        r.errf(".noise: unknown or ground node '%s'\n", t[1].c_str());
        return 2;
      }
      const auto pts =
          static_cast<std::size_t>(circuit::parseSpiceNumber(t[3]));
      const Real f0 = circuit::parseSpiceNumber(t[4]);
      const Real f1 = circuit::parseSpiceNumber(t[5]);
      const Real decades = std::log10(f1 / f0);
      const auto freqs = analysis::logspace(
          f0, f1,
          std::max<std::size_t>(
              2, static_cast<std::size_t>(std::lround(pts * decades)) + 1));
      const auto nr = analysis::noiseAnalysis(sys, dc.x, node, freqs);
      AnalysisOutcome a;
      a.card = ".noise";
      a.summary = strprintf("* .noise at V(%s)", t[1].c_str());
      a.status = diag::SolverStatus::Converged;
      a.ok = true;
      r.outf("%s\n", a.summary.c_str());
      r.outf("%-16s %-14s\n", "freq", "PSD (V^2/Hz)");
      for (std::size_t k = 0; k < freqs.size(); ++k)
        r.outf("%-16.8e %-14.6e\n", nr.freq[k], nr.totalPsd[k]);
      res.analyses.push_back(a);
      r.analysisDone(a);
    } else if (t[0] == ".hb" && t.size() >= 3) {
      std::vector<hb::Tone> tones;
      tones.push_back(
          {circuit::parseSpiceNumber(t[1]),
           static_cast<std::size_t>(circuit::parseSpiceNumber(t[2]))});
      if (t.size() >= 5)
        tones.push_back(
            {circuit::parseSpiceNumber(t[3]),
             static_cast<std::size_t>(circuit::parseSpiceNumber(t[4]))});
      hb::HBOptions ho;
      ho.continuationSteps = 3;
      ho.budget = budget;
      hb::HarmonicBalance eng(sys, tones, ho);
      const auto sol = eng.solve(dc.x);
      AnalysisOutcome a;
      a.card = ".hb";
      a.status = effStatus(sol.status);
      a.summary = strprintf(
          "* .hb converged=%d status=%s strategy=%s unknowns=%zu newton=%zu "
          "gmres=%zu retries=%zu",
          sol.converged ? 1 : 0, diag::toString(a.status),
          sol.strategy.c_str(), sol.realUnknowns, sol.newtonIterations,
          sol.gmresIterations, sol.retries);
      a.ok = sol.converged;
      r.outf("%s\n", a.summary.c_str());
      if (sol.status == diag::SolverStatus::BudgetExceeded) {
        res.analyses.push_back(a);
        r.analysisDone(a);
        if (budget->cancelled()) {
          r.errf("job cancelled during .hb\n");
          return 5;
        }
        r.errf("budget exceeded during .hb (%s)\n", budget->reason());
        return budgetExit();
      }
      if (!sol.converged) {
        res.analyses.push_back(a);
        r.analysisDone(a);
        return 3;
      }
      for (const auto& [name, idx] : outs) {
        r.outf("spectrum of %s:\n", name.c_str());
        r.outf("  %-14s %-6s %-6s %-14s %-8s\n", "freq", "k1", "k2", "amp (V)",
              "dBc");
        for (const auto& l : hb::spectrumOf(sol, idx)) {
          if (l.amplitude < 1e-15) continue;
          r.outf("  %-14.6e %-6d %-6d %-14.6e %-8.1f\n", l.freq, l.k1, l.k2,
                l.amplitude, l.dbc);
        }
      }
      res.analyses.push_back(a);
      r.analysisDone(a);
    } else {
      res.error = "unrecognized analysis card: " + t[0];
      r.errf("unrecognized analysis card: %s\n", t[0].c_str());
      return 2;
    }
  }
  return 0;
}

}  // namespace

std::string topologyKey(const std::string& netlist) {
  std::string key;
  key.reserve(netlist.size());
  std::istringstream in(netlist);
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    if (line.empty() || line[0] == '*') continue;  // blank / comment
    if (line[0] == '.') {
      const auto toks = splitTokens(line);
      if (toks.empty() || isAnalysisHead(lowered(toks[0]))) continue;
    }
    key += line;
    key += '\n';
  }
  return key;
}

std::uint64_t topologyHash(const std::string& key) {
  std::uint64_t h = 14695981039346656037ULL;  // FNV-1a 64
  for (const unsigned char c : key) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string preflightCheck(const std::string& netlist,
                           const PreflightLimits& limits) {
  if (limits.maxNetlistBytes != 0 && netlist.size() > limits.maxNetlistBytes)
    return "netlist is " + std::to_string(netlist.size()) +
           " bytes (cap " + std::to_string(limits.maxNetlistBytes) + ")";

  std::size_t devices = 0;
  std::unordered_set<std::string> nodes;
  std::size_t lineNo = 0;
  bool sawAnything = false;
  std::istringstream in(netlist);
  std::string line;
  while (std::getline(in, line)) {
    ++lineNo;
    while (!line.empty() &&
           (line.back() == '\r' || line.back() == ' ' || line.back() == '\t'))
      line.pop_back();
    if (line.empty()) continue;
    sawAnything = true;
    // Comments, control cards, and '+' continuations (value fields of the
    // previous card) carry no new devices or terminals.
    if (line[0] == '*' || line[0] == '.' || line[0] == '+') continue;
    const auto toks = splitTokens(line);
    if (toks.size() < 3)
      return "malformed element card at line " + std::to_string(lineNo) +
             ": '" + line + "' (expected name + two nodes at least)";
    ++devices;
    if (limits.maxDevices != 0 && devices > limits.maxDevices)
      return "too many devices (> cap " + std::to_string(limits.maxDevices) +
             ")";
    if (limits.maxNodes != 0) {
      nodes.insert(toks[1]);
      nodes.insert(toks[2]);
      if (nodes.size() > limits.maxNodes)
        return "too many nodes (> cap " + std::to_string(limits.maxNodes) +
               ")";
    }
  }
  if (!sawAnything) return "empty netlist";
  return "";
}

std::size_t Engine::pooledContexts() {
  diag::LockGuard lock(mu_);
  return pool_.size();
}

std::unique_ptr<Engine::Context> Engine::acquireContext(const std::string& netlist) {
  const std::string key = topologyKey(netlist);
  const std::uint64_t h = topologyHash(key);
  {
    diag::LockGuard lock(mu_);
    for (auto it = pool_.begin(); it != pool_.end(); ++it) {
      if ((*it)->hash == h && (*it)->key == key) {
        auto ctx = std::move(*it);
        pool_.erase(it);
        perf::global().addCtxHit();
        return ctx;
      }
    }
  }
  perf::global().addCtxMiss();
  auto ctx = std::make_unique<Context>();
  ctx->key = key;
  ctx->hash = h;
  circuit::parseNetlist(netlist, ctx->ckt);
  ctx->sys = std::make_unique<circuit::MnaSystem>(ctx->ckt);
  ctx->ws = std::make_unique<circuit::MnaWorkspace>(*ctx->sys);
  // Memory budget: a cold context's parse footprint, estimated by the
  // netlist text size (device and node tables scale with it); the
  // workspace's pattern memory is charged precisely at its grow sites.
  // A warm checkout charges nothing — reuse is the cheap path.
  diag::memCharge(netlist.size());
  return ctx;
}

void Engine::releaseContext(std::unique_ptr<Context> ctx) {
  if (ctx == nullptr) return;
  diag::LockGuard lock(mu_);
  if (pool_.size() < opts_.contextCacheCap) pool_.push_back(std::move(ctx));
}

JobResult Engine::run(const JobSpec& spec, EventSink& sink,
                      diag::RunBudget* budget) {
  JobResult res;
  diag::RunBudget local;
  if (budget == nullptr) {
    if (spec.timeoutSeconds > 0) local.setWallLimit(spec.timeoutSeconds);
    if (spec.newtonLimit > 0) local.setNewtonLimit(spec.newtonLimit);
    if (spec.krylovLimit > 0) local.setKrylovLimit(spec.krylovLimit);
    if (spec.maxBytes > 0) local.setMemoryLimit(spec.maxBytes);
    budget = &local;
  }
  Renderer r(sink, spec.id);
  {
    // Per-job attribution: every counter event on this thread (and on pool
    // workers running this job's parallel sections) lands in jobCounters,
    // then folds into the process totals when the scope exits. The memory
    // scope does the same for workspace-growth charges — ThreadPool batches
    // carry both into their workers.
    perf::Counters jobCounters;
    perf::CounterScope scope(jobCounters);
    diag::MemScope memScope(budget->memAccount());
    std::optional<perf::ThreadPool::ScopedLaneCap> lanes;
    if (spec.threadShare > 0) lanes.emplace(spec.threadShare);
    // Per-job pivot ordering: install a thread-local override so every
    // factorization this job performs (workspace, HB blocks, one-shot AC
    // LUs) resolves Auto to the job's choice without racing other jobs.
    std::optional<sparse::ScopedOrderingOverride> orderingOverride;
    if (!spec.ordering.empty()) {
      sparse::Ordering ord;
      if (!sparse::parseOrdering(spec.ordering, ord)) {
        res.error = "unknown ordering '" + spec.ordering + "'";
        r.errf("error: %s (expected natural|amd)\n", res.error.c_str());
        res.exitCode = 2;
        res.perf = jobCounters.snapshot();
        r.flush();
        return res;
      }
      orderingOverride.emplace(ord);
    }
    std::unique_ptr<Context> ctx;
    try {
      ctx = acquireContext(spec.netlist);
      // Pooled contexts may have been created under a different ordering;
      // re-resolve so the cached workspace re-analyzes if it changed.
      ctx->ws->setOrdering(sparse::effectiveOrdering());
      res.exitCode = runCards(spec, ctx->ckt, *ctx->sys, *ctx->ws, budget, r,
                              res);
    } catch (const std::exception& e) {
      // Parse errors, bad card arguments, solver non-convergence throws:
      // same rendering and exit code as the old CLI's catch-all in main().
      res.error = e.what();
      r.errf("error: %s\n", e.what());
      res.exitCode = 1;
    }
    releaseContext(std::move(ctx));
    res.peakBytes = budget->memAccount().peakBytes();
    jobCounters.noteMemPeak(res.peakBytes);
    res.perf = jobCounters.snapshot();
  }
  r.flush();
  res.cancelled = res.exitCode == 5;
  return res;
}

}  // namespace rfic::engine
