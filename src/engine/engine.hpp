// Engine: executes one JobSpec — parse, DC, then every analysis card —
// streaming rendered output and structured outcomes through an EventSink.
//
// This is the old rficsim `runFile` lifted out of the CLI into a reusable,
// multi-tenant layer. Two things change beyond the move:
//
//  * Output becomes an event stream (engine/job.hpp). The text rendered
//    into Stdout/Stderr events is byte-identical to what the monolithic
//    CLI printed, so rficsim stays flag-for-flag compatible by simply
//    replaying the stream onto stdio, while rficd forwards the same
//    events as newline-delimited JSON.
//
//  * Repeat-topology jobs share numeric state. The engine keeps a small
//    pool of CircuitContexts — parsed Circuit + MnaSystem + MnaWorkspace —
//    keyed by a hash of the netlist's element cards (analysis cards
//    stripped, so ".op today, .tran tomorrow" on the same circuit still
//    hits). A checked-out context hands its workspace to the DC and
//    transient solvers, which then replay the cached sparsity pattern and
//    SymbolicLU pivot order instead of rediscovering them; the process-wide
//    fft::PlanCache gives HB the same cross-job reuse for free. Contexts
//    are checked out exclusively (removed from the pool while a job runs),
//    so concurrent jobs on one topology never share mutable state.
//
// Cancellation and budgets ride on diag::RunBudget: the Scheduler owns one
// budget per job and trips it (requestCancel) to cancel; every solver
// already polls budgetExceeded() at step granularity, so a cancelled job
// unwinds with partial results and exit code 5.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "circuit/circuit.hpp"
#include "circuit/mna.hpp"
#include "circuit/mna_workspace.hpp"
#include "diag/resilience.hpp"
#include "diag/thread_annotations.hpp"
#include "engine/job.hpp"

namespace rfic::engine {

/// The topology-defining subset of a netlist: element and .model cards,
/// with analysis/print/comment lines stripped and line endings normalized.
/// Two netlists with equal keys build identical circuits.
std::string topologyKey(const std::string& netlist);

/// FNV-1a 64-bit hash of topologyKey(netlist) — the context-cache index.
std::uint64_t topologyHash(const std::string& key);

/// Caps for preflightCheck(). A zero cap disarms that check; the
/// empty-netlist and malformed-card checks are always on.
struct PreflightLimits {
  std::size_t maxDevices = 0;       ///< element-card count cap
  std::size_t maxNodes = 0;         ///< distinct node-name cap (lower bound:
                                    ///< the first two terminals per card)
  std::size_t maxNetlistBytes = 0;  ///< raw netlist text size cap
};

/// Cheap parse-only validation run at submit, before a job occupies a
/// worker: a single line scan counting element cards and node names — no
/// device construction, no allocation proportional to circuit size beyond
/// the node-name set. Returns "" when the spec passes, else a diagnostic
/// suitable for a rejection reply. Violations are the exit-2 class of
/// error (bad input, not engine failure).
std::string preflightCheck(const std::string& netlist,
                           const PreflightLimits& limits);

/// Executes jobs; owns the cross-job CircuitContext pool. Thread-safe:
/// any number of threads may call run() concurrently (the Scheduler's
/// workers all share one Engine).
class Engine {
 public:
  struct Options {
    /// Max parked contexts (checked-out ones don't count). Small on
    /// purpose: a context pins a factorization's fill-in worth of memory.
    std::size_t contextCacheCap = 16;
  };

  Engine() : Engine(Options{}) {}
  explicit Engine(Options opts) : opts_(opts) {}

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Execute `spec`, streaming events into `sink` from the calling thread.
  /// `budget` is the job's cooperative budget; pass null to have the
  /// engine arm a local one from the spec's limits (the CLI path — the
  /// Scheduler passes its own so cancel() can reach a running job).
  /// Never throws: netlist/analysis errors become Stderr events and a
  /// nonzero exitCode, exactly like the old CLI's catch-all in main().
  JobResult run(const JobSpec& spec, EventSink& sink,
                diag::RunBudget* budget = nullptr) RFIC_EXCLUDES(mu_);

  /// Parked contexts right now (tests / introspection).
  std::size_t pooledContexts() RFIC_EXCLUDES(mu_);

 private:
  /// One reusable parsed circuit: the Circuit owns the devices, the
  /// MnaSystem and MnaWorkspace reference it, so the struct is pinned on
  /// the heap and moved around by unique_ptr.
  struct Context {
    std::string key;
    std::uint64_t hash = 0;
    circuit::Circuit ckt;
    std::unique_ptr<circuit::MnaSystem> sys;
    std::unique_ptr<circuit::MnaWorkspace> ws;
  };

  std::unique_ptr<Context> acquireContext(const std::string& netlist)
      RFIC_EXCLUDES(mu_);
  void releaseContext(std::unique_ptr<Context> ctx) RFIC_EXCLUDES(mu_);

  Options opts_;
  diag::Mutex mu_;
  std::vector<std::unique_ptr<Context>> pool_ RFIC_GUARDED_BY(mu_);
};

}  // namespace rfic::engine
