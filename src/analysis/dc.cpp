#include "analysis/dc.hpp"

#include <cmath>
#include <limits>
#include <optional>

namespace rfic::analysis {

namespace {

// SPICE-style componentwise KCL check: every residual entry small against
// the local current level.
bool residualConverged(const RVec& r, const RVec& f, const RVec& b,
                       Real sourceScale, const DCOptions& opts) {
  for (std::size_t i = 0; i < r.size(); ++i) {
    const Real level = std::abs(f[i]) + std::abs(sourceScale * b[i]);
    if (std::abs(r[i]) > opts.tolRelative * level + opts.tolResidual)
      return false;
  }
  return true;
}

}  // namespace

bool dcNewton(circuit::MnaWorkspace& ws, RVec& x, Real sourceScale,
              Real gshunt, const DCOptions& opts, std::size_t& itersOut,
              diag::SolverStatus* statusOut) {
  const std::size_t n = ws.dim();
  diag::SolverStatus localStatus = diag::SolverStatus::MaxIterations;
  diag::SolverStatus& status = statusOut ? *statusOut : localStatus;
  status = diag::SolverStatus::MaxIterations;
  RVec xPrev = x;
  // The componentwise relative test alone is satisfiable by garbage iterates
  // whose device currents are astronomically large (r ≈ f there); require
  // the last Newton update to have settled as well, SPICE-style.
  Real lastUpdate = 1e300;
  RVec r(n), rTrue(n), rt(n);
  for (std::size_t it = 0; it < opts.maxIterations; ++it) {
    itersOut = it + 1;
    if (opts.budget) opts.budget->chargeNewton();
    if (diag::budgetExceeded(opts.budget)) {
      status = diag::SolverStatus::BudgetExceeded;
      return false;
    }
    // Convergence is judged on the TRUE residual (no junction limiting):
    // the limited evaluation can look perfectly KCL-consistent while the
    // actual iterate is far from a solution.
    {
      ws.eval(x, 0.0, false);
      for (std::size_t i = 0; i < n; ++i)
        rTrue[i] = ws.f()[i] - sourceScale * ws.b()[i] + gshunt * x[i];
      if (residualConverged(rTrue, ws.f(), ws.b(), sourceScale, opts)) {
        const bool updateSettled =
            lastUpdate < opts.tolUpdate * (1.0 + numeric::normInf(x));
        if (updateSettled || numeric::norm2(rTrue) < opts.tolResidual) {
          status = diag::SolverStatus::Converged;
          return true;
        }
      }
    }
    // The Newton step itself uses the limited evaluation.
    ws.eval(x, 0.0, true, it > 0 ? &xPrev : nullptr);
    for (std::size_t i = 0; i < n; ++i)
      r[i] = ws.f()[i] - sourceScale * ws.b()[i] + gshunt * x[i];
    if (diag::FaultInjector::global().fire(diag::FaultPoint::NanInResidual))
      r[0] = std::numeric_limits<Real>::quiet_NaN();
    const Real rnorm = numeric::norm2(r);
    if (!std::isfinite(rnorm)) {
      // A NaN/Inf residual at the linearization point means the iterate
      // left the device models' domain; fail cleanly and let the caller's
      // continuation ladder restart from a gentler problem.
      status = diag::SolverStatus::Diverged;
      return false;
    }

    // J = G + gshunt·I over the cached pattern; after the first iteration
    // this is a numeric refactorization (SolverStatus::Repivoted when the
    // recorded pivots went stale).
    RVec dx;
    try {
      if (diag::FaultInjector::global().fire(
              diag::FaultPoint::SingularJacobian))
        failNumerical("dcNewton: injected singular Jacobian");
      ws.factorJacobian(0.0, 1.0, gshunt);
      dx = ws.solve(r);
    } catch (const NumericalError&) {
      status = diag::SolverStatus::Breakdown;
      return false;
    }

    // Damped update: halve the step until the residual stops blowing up.
    xPrev = x;
    Real alpha = 1.0;
    bool accepted = false;
    for (int damp = 0; damp <= 8; ++damp) {
      RVec trial = x;
      numeric::axpy(-alpha, dx, trial);
      ws.eval(trial, 0.0, false, &xPrev);
      for (std::size_t i = 0; i < n; ++i)
        rt[i] = ws.f()[i] - sourceScale * ws.b()[i] + gshunt * trial[i];
      const Real rtNorm = numeric::norm2(rt);
      // Junction limiting makes the evaluated residual differ from the pure
      // Newton model, so accept any non-diverging step — but only a FINITE
      // one. The damp cap used to force-accept whatever trial was last
      // computed, which could plant a NaN state that every later iteration
      // inherits; a non-finite trial at the cap is now a clean failure.
      if (std::isfinite(rtNorm) && (rtNorm <= 2.0 * rnorm || damp == 8)) {
        x = trial;
        lastUpdate = alpha * numeric::normInf(dx);
        accepted = true;
        break;
      }
      alpha *= 0.5;
    }
    if (!accepted) {
      status = diag::SolverStatus::Diverged;
      return false;
    }
  }
  return false;
}

bool dcNewton(const MnaSystem& sys, RVec& x, Real sourceScale, Real gshunt,
              const DCOptions& opts, std::size_t& itersOut,
              diag::SolverStatus* statusOut) {
  circuit::MnaWorkspace ws(sys);
  return dcNewton(ws, x, sourceScale, gshunt, opts, itersOut, statusOut);
}

DCResult dcOperatingPoint(const MnaSystem& sys, const DCOptions& opts) {
  RFIC_REQUIRE(sys.dim() > 0, "dcOperatingPoint: empty system");
  RFIC_REQUIRE(opts.maxIterations > 0, "dcOperatingPoint: maxIterations == 0");
  DCResult res;
  res.x = RVec(sys.dim(), 0.0);

  // One workspace for all strategies: the circuit's pattern and pivot order
  // carry across Newton restarts and continuation ramps. A caller-supplied
  // workspace extends that reuse across whole solves (engine context cache).
  std::optional<circuit::MnaWorkspace> local;
  if (opts.workspace != nullptr)
    RFIC_REQUIRE(&opts.workspace->system() == &sys,
                 "dcOperatingPoint: workspace bound to a different system");
  circuit::MnaWorkspace& ws =
      opts.workspace != nullptr ? *opts.workspace : local.emplace(sys);

  diag::SolverStatus status = diag::SolverStatus::NotRun;
  const auto budgetAbort = [&](const RVec& partial, const char* strategy) {
    res.x = partial;
    res.converged = false;
    res.status = diag::SolverStatus::BudgetExceeded;
    res.strategy = strategy;
    res.perf = ws.counters();
    return res;
  };

  // Strategy 1: plain Newton from zero.
  if (dcNewton(ws, res.x, 1.0, 0.0, opts, res.iterations, &status)) {
    res.converged = true;
    res.status = diag::SolverStatus::Converged;
    res.strategy = "newton";
    res.perf = ws.counters();
    return res;
  }
  if (status == diag::SolverStatus::BudgetExceeded)
    return budgetAbort(res.x, "newton");

  // Strategy 2: gmin stepping.
  ws.noteFallback();
  {
    RVec x(sys.dim(), 0.0);
    bool ok = true;
    std::size_t iters = 0;
    for (std::size_t k = 0; k <= opts.gminSteps; ++k) {
      const Real g = (k == opts.gminSteps)
                         ? 0.0
                         : opts.initialGmin * std::pow(0.1, static_cast<Real>(k));
      std::size_t it = 0;
      if (!dcNewton(ws, x, 1.0, g, opts, it, &status)) {
        ok = false;
        break;
      }
      iters += it;
    }
    if (ok) {
      res.x = x;
      res.converged = true;
      res.status = diag::SolverStatus::Converged;
      res.iterations = iters;
      res.strategy = "gmin";
      res.perf = ws.counters();
      return res;
    }
    if (status == diag::SolverStatus::BudgetExceeded)
      return budgetAbort(x, "gmin");
  }

  // Strategy 3: source stepping.
  ws.noteFallback();
  {
    RVec x(sys.dim(), 0.0);
    bool ok = true;
    std::size_t iters = 0;
    for (std::size_t k = 1; k <= opts.sourceSteps; ++k) {
      const Real scale =
          static_cast<Real>(k) / static_cast<Real>(opts.sourceSteps);
      std::size_t it = 0;
      if (!dcNewton(ws, x, scale, 0.0, opts, it, &status)) {
        ok = false;
        break;
      }
      iters += it;
    }
    if (ok) {
      res.x = x;
      res.converged = true;
      res.status = diag::SolverStatus::Converged;
      res.iterations = iters;
      res.strategy = "source";
      res.perf = ws.counters();
      return res;
    }
    if (status == diag::SolverStatus::BudgetExceeded)
      return budgetAbort(x, "source");
  }

  failNumerical("dcOperatingPoint: no convergence with any strategy");
}

}  // namespace rfic::analysis
