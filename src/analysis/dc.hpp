// DC operating-point analysis: damped Newton with gmin stepping and source
// stepping continuation — the robustness workhorse every other analysis
// starts from.
#pragma once

#include "circuit/mna.hpp"
#include "circuit/mna_workspace.hpp"
#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "perf/perf.hpp"

namespace rfic::analysis {

using circuit::MnaSystem;
using numeric::RVec;

struct DCOptions {
  std::size_t maxIterations = 200;
  Real tolResidual = 1e-12;  ///< absolute residual floor [A] (KCL abstol)
  Real tolRelative = 1e-6;   ///< relative residual vs local current level
  Real tolUpdate = 1e-9;     ///< absolute update norm target [V]
  std::size_t gminSteps = 10;    ///< decades of gmin continuation
  std::size_t sourceSteps = 10;  ///< source-stepping ramp points
  Real initialGmin = 1e-2;
  /// Optional cooperative budget: Newton iterations are charged against it
  /// and the solve returns SolverStatus::BudgetExceeded (instead of
  /// escalating strategies or throwing) once it trips.
  diag::RunBudget* budget = nullptr;
  /// Optional caller-owned workspace (must be built on the same MnaSystem).
  /// When set, the solve reuses its cached sparsity pattern and SymbolicLU
  /// pivot order — this is how the engine layer makes repeat-topology jobs
  /// refactor instead of re-discovering the pattern from scratch.
  circuit::MnaWorkspace* workspace = nullptr;
};

struct DCResult {
  RVec x;
  bool converged = false;
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::size_t iterations = 0;
  std::string strategy;  ///< "newton", "gmin", or "source"
  perf::Snapshot perf;   ///< pipeline counters for the whole solve
};

/// Solve f(x) = b(0). Tries plain Newton, then gmin stepping, then source
/// stepping. Throws NumericalError if all strategies fail — except under a
/// tripped RunBudget, which returns the partial result with
/// SolverStatus::BudgetExceeded instead.
DCResult dcOperatingPoint(const MnaSystem& sys, const DCOptions& opts = {});

/// Newton solve of f(x) = scale·b(0) + gshunt·x-leak starting from x0.
/// Exposed for the continuation strategies and for tests. `statusOut`
/// (optional) reports why the loop stopped: Converged, MaxIterations,
/// Breakdown (singular Jacobian), Diverged (non-finite residual with no
/// finite damped step), or BudgetExceeded.
bool dcNewton(const MnaSystem& sys, RVec& x, Real sourceScale, Real gshunt,
              const DCOptions& opts, std::size_t& itersOut,
              diag::SolverStatus* statusOut = nullptr);

/// Pattern-cached variant sharing one workspace across calls — the gmin and
/// source continuation strategies reuse the same factorization pattern for
/// every ramp point.
bool dcNewton(circuit::MnaWorkspace& ws, RVec& x, Real sourceScale,
              Real gshunt, const DCOptions& opts, std::size_t& itersOut,
              diag::SolverStatus* statusOut = nullptr);

}  // namespace rfic::analysis
