// DC operating-point analysis: damped Newton with gmin stepping and source
// stepping continuation — the robustness workhorse every other analysis
// starts from.
#pragma once

#include "circuit/mna.hpp"
#include "circuit/mna_workspace.hpp"
#include "diag/convergence.hpp"
#include "perf/perf.hpp"

namespace rfic::analysis {

using circuit::MnaSystem;
using numeric::RVec;

struct DCOptions {
  std::size_t maxIterations = 200;
  Real tolResidual = 1e-12;  ///< absolute residual floor [A] (KCL abstol)
  Real tolRelative = 1e-6;   ///< relative residual vs local current level
  Real tolUpdate = 1e-9;     ///< absolute update norm target [V]
  std::size_t gminSteps = 10;    ///< decades of gmin continuation
  std::size_t sourceSteps = 10;  ///< source-stepping ramp points
  Real initialGmin = 1e-2;
};

struct DCResult {
  RVec x;
  bool converged = false;
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::size_t iterations = 0;
  std::string strategy;  ///< "newton", "gmin", or "source"
  perf::Snapshot perf;   ///< pipeline counters for the whole solve
};

/// Solve f(x) = b(0). Tries plain Newton, then gmin stepping, then source
/// stepping. Throws NumericalError if all strategies fail.
DCResult dcOperatingPoint(const MnaSystem& sys, const DCOptions& opts = {});

/// Newton solve of f(x) = scale·b(0) + gshunt·x-leak starting from x0.
/// Exposed for the continuation strategies and for tests.
bool dcNewton(const MnaSystem& sys, RVec& x, Real sourceScale, Real gshunt,
              const DCOptions& opts, std::size_t& itersOut);

/// Pattern-cached variant sharing one workspace across calls — the gmin and
/// source continuation strategies reuse the same factorization pattern for
/// every ramp point.
bool dcNewton(circuit::MnaWorkspace& ws, RVec& x, Real sourceScale,
              Real gshunt, const DCOptions& opts, std::size_t& itersOut);

}  // namespace rfic::analysis
