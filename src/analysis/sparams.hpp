// S-parameter extraction of linearized N-port circuits.
//
// Section 4 notes that a field solver's output "is typically an S parameter
// matrix, which can be used directly in a frequency-domain simulation."
// This module provides the same interface for any circuit in the library:
// ports are node pairs, the Z-matrix is assembled column-by-column from AC
// solves, and S = (Z − Z₀)(Z + Z₀)⁻¹ for a common reference impedance.
#pragma once

#include <vector>

#include "analysis/ac.hpp"
#include "numeric/dense.hpp"

namespace rfic::analysis {

/// One port: a node pair (minus may be ground = −1).
struct Port {
  int nodePlus = -1;
  int nodeMinus = -1;
  std::string name;
};

/// S-parameters of one frequency point (nPorts × nPorts).
struct SParameters {
  Real freq = 0;
  numeric::CMat s;

  /// |S(i,j)| in dB.
  Real magDb(std::size_t i, std::size_t j) const;
};

/// Compute S at one frequency from the circuit linearized at xop.
SParameters sParameters(const MnaSystem& sys, const numeric::RVec& xop,
                        const std::vector<Port>& ports, Real freqHz,
                        Real z0 = 50.0);

/// Frequency sweep.
std::vector<SParameters> sParameterSweep(const MnaSystem& sys,
                                         const numeric::RVec& xop,
                                         const std::vector<Port>& ports,
                                         const std::vector<Real>& freqs,
                                         Real z0 = 50.0);

/// Passivity sample check: every singular value of S must be ≤ 1 for a
/// passive network (checked via the Hermitian form I − SᴴS ⪰ 0 at the
/// given tolerance).
bool isPassiveSample(const SParameters& sp, Real tol = 1e-9);

}  // namespace rfic::analysis
