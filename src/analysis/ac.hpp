// Small-signal AC analysis: linearize at an operating point and solve
// (G + jωC)·x = u over a frequency sweep.
#pragma once

#include <vector>

#include "circuit/mna.hpp"
#include "circuit/sources.hpp"

namespace rfic::analysis {

using circuit::MnaSystem;
using numeric::CVec;
using numeric::RVec;

struct ACResult {
  std::vector<Real> freq;
  std::vector<CVec> x;  ///< one solution vector per frequency
};

/// Solve (G + j·2πf·C) x = u at a single frequency, with G, C linearized at
/// operating point xop.
CVec acSolve(const MnaSystem& sys, const RVec& xop, Real freqHz,
             const CVec& stimulus);

/// Sweep a list of frequencies with one factorization per point.
ACResult acSweep(const MnaSystem& sys, const RVec& xop,
                 const std::vector<Real>& freqs, const CVec& stimulus);

/// Unit AC stimulus applied through an existing voltage source (its branch
/// equation right-hand side becomes `amplitude`).
CVec acStimulusVSource(const MnaSystem& sys, const circuit::VSource& src,
                       Complex amplitude = {1.0, 0.0});

/// Unit AC current injected between two nodes (np → nm through the source,
/// SPICE convention).
CVec acStimulusCurrent(const MnaSystem& sys, int nodePlus, int nodeMinus,
                       Complex amplitude = {1.0, 0.0});

/// Logarithmically spaced frequency grid [fStart, fStop] with n points.
std::vector<Real> logspace(Real fStart, Real fStop, std::size_t n);

}  // namespace rfic::analysis
