#include "analysis/shooting.hpp"

#include <cmath>

#include "diag/contracts.hpp"
#include "numeric/lu.hpp"

namespace rfic::analysis {

namespace {

// Integrate one period from x0 with sensitivity propagation; fills the
// trajectory and returns the monodromy matrix in `sens`. The workspace
// persists across periods (and Newton iterations), so every step after the
// very first refactors on the cached pattern instead of refactoring
// symbolically.
bool sweepPeriod(circuit::MnaWorkspace& ws, Real t0, Real period,
                 const RVec& x0, const ShootingOptions& opts, Real innerTol,
                 std::vector<Real>& times, std::vector<RVec>& traj,
                 RMat& sens) {
  const std::size_t n = ws.dim();
  const std::size_t m = opts.stepsPerPeriod;
  const Real h = period / static_cast<Real>(m);
  sens = RMat::identity(n);
  times.assign(1, t0);
  traj.assign(1, x0);
  RVec x = x0, x1;
  for (std::size_t k = 0; k < m; ++k) {
    const Real t = t0 + h * static_cast<Real>(k);
    if (!integrateStep(ws, opts.method, t, h, x, nullptr, x1, &sens, 50,
                       innerTol)) {
      return false;
    }
    x = x1;
    times.push_back(t + h);
    traj.push_back(x);
  }
  return true;
}

// ẋ at state x, time t, assuming invertible C: C·ẋ = b − f.
RVec stateDerivative(const circuit::MnaSystem& sys, const RVec& x, Real t) {
  circuit::MnaEval e;
  sys.eval(x, t, e, true);
  const std::size_t n = sys.dim();
  RVec rhs(n);
  for (std::size_t i = 0; i < n; ++i) rhs[i] = e.b[i] - e.f[i];
  numeric::RMat c = e.C.toDense();
  return numeric::solveDense(std::move(c), rhs);
}

}  // namespace

PSSResult shootingPSS(const circuit::MnaSystem& sys, Real period,
                      const RVec& guess, const ShootingOptions& opts) {
  RFIC_REQUIRE(period > 0, "shootingPSS: period must be positive");
  const std::size_t n = sys.dim();
  RFIC_REQUIRE(guess.size() == n, "shootingPSS: guess size mismatch");

  PSSResult res;
  res.period = period;
  res.method = opts.method;

  // Retry ladder: each failed attempt restarts from the original guess
  // with the inner Newton tolerance tightened 100× — integration error
  // contaminating the monodromy is the usual reason the outer Newton
  // breaks down or spins.
  circuit::MnaWorkspace ws(sys);
  Real innerTol = opts.newtonTol;
  for (std::size_t attempt = 0;; ++attempt) {
    res.x0 = guess;
    res.converged = false;
    res.status = diag::SolverStatus::MaxIterations;
    for (std::size_t it = 0; it < opts.maxIterations; ++it) {
      ++res.newtonIterations;
      if (opts.budget) opts.budget->chargeNewton();
      if (diag::budgetExceeded(opts.budget)) {
        res.status = diag::SolverStatus::BudgetExceeded;
        break;
      }
      if (!sweepPeriod(ws, 0.0, period, res.x0, opts, innerTol, res.times,
                       res.trajectory, res.monodromy)) {
        res.status = diag::SolverStatus::Breakdown;  // integrator failed
        break;
      }
      RVec g = res.trajectory.back();
      g -= res.x0;
      const Real gnorm = numeric::norm2(g);
      if (!diag::isFinite(gnorm)) {
        res.status = diag::SolverStatus::Diverged;
        break;
      }
      if (gnorm < opts.tolerance * (1.0 + numeric::norm2(res.x0))) {
        res.converged = true;
        res.status = diag::SolverStatus::Converged;
        return res;
      }
      // Solve (M − I)·dx = −g. A singular (M − I) — a +1 Floquet
      // multiplier, or an injected singular-jacobian fault — is a clean
      // Breakdown, not an escaping exception.
      RMat j = res.monodromy;
      for (std::size_t i = 0; i < n; ++i) j(i, i) -= 1.0;
      RVec dx;
      try {
        if (diag::FaultInjector::global().fire(
                diag::FaultPoint::SingularJacobian))
          failNumerical("shootingPSS: injected singular Jacobian");
        dx = numeric::solveDense(std::move(j), g);
      } catch (const NumericalError&) {
        res.status = diag::SolverStatus::Breakdown;
        break;
      }
      res.x0 -= dx;
    }
    if (res.status == diag::SolverStatus::BudgetExceeded ||
        attempt >= opts.maxRetries)
      return res;
    innerTol *= 0.01;
    ++res.retries;
    ws.noteRetry();
  }
}

PSSResult shootingOscillatorPSS(const circuit::MnaSystem& sys,
                                Real periodGuess, const RVec& guess,
                                std::size_t anchorIndex, Real anchorValue,
                                const ShootingOptions& opts) {
  RFIC_REQUIRE(periodGuess > 0, "shootingOscillatorPSS: bad period guess");
  const std::size_t n = sys.dim();
  RFIC_REQUIRE(guess.size() == n && anchorIndex < n,
               "shootingOscillatorPSS: bad arguments");

  PSSResult res;
  res.method = opts.method;

  circuit::MnaWorkspace ws(sys);
  Real innerTol = opts.newtonTol;
  for (std::size_t attempt = 0;; ++attempt) {
    res.period = periodGuess;
    res.x0 = guess;
    res.x0[anchorIndex] = anchorValue;
    res.converged = false;
    res.status = diag::SolverStatus::MaxIterations;
    for (std::size_t it = 0; it < opts.maxIterations; ++it) {
      ++res.newtonIterations;
      if (opts.budget) opts.budget->chargeNewton();
      if (diag::budgetExceeded(opts.budget)) {
        res.status = diag::SolverStatus::BudgetExceeded;
        break;
      }
      if (!sweepPeriod(ws, 0.0, res.period, res.x0, opts, innerTol,
                       res.times, res.trajectory, res.monodromy)) {
        res.status = diag::SolverStatus::Breakdown;  // integrator failed
        break;
      }
      RVec g = res.trajectory.back();
      g -= res.x0;
      const Real gnorm = numeric::norm2(g);
      if (!diag::isFinite(gnorm)) {
        res.status = diag::SolverStatus::Diverged;
        break;
      }
      if (gnorm < opts.tolerance * (1.0 + numeric::norm2(res.x0))) {
        res.converged = true;
        res.status = diag::SolverStatus::Converged;
        return res;
      }

      // Augmented Newton system:
      //   [ M − I   ẋ(T) ] [dx]   [ −g ]
      //   [ e_aᵀ      0  ] [dT] = [  0 ]
      RVec d;
      try {
        if (diag::FaultInjector::global().fire(
                diag::FaultPoint::SingularJacobian))
          failNumerical("shootingOscillatorPSS: injected singular Jacobian");
        const RVec xdotT =
            stateDerivative(sys, res.trajectory.back(), res.period);
        RMat j(n + 1, n + 1);
        for (std::size_t i = 0; i < n; ++i) {
          for (std::size_t k = 0; k < n; ++k) j(i, k) = res.monodromy(i, k);
          j(i, i) -= 1.0;
          j(i, n) = xdotT[i];
        }
        j(n, anchorIndex) = 1.0;
        RVec rhs(n + 1);
        for (std::size_t i = 0; i < n; ++i) rhs[i] = g[i];
        rhs[n] = res.x0[anchorIndex] - anchorValue;
        d = numeric::solveDense(std::move(j), rhs);
      } catch (const NumericalError&) {
        res.status = diag::SolverStatus::Breakdown;
        break;
      }

      // Damped update guards against period sign flips far from the orbit.
      Real alpha = 1.0;
      if (std::abs(d[n]) > 0.3 * res.period)
        alpha = 0.3 * res.period / std::abs(d[n]);
      for (std::size_t i = 0; i < n; ++i) res.x0[i] -= alpha * d[i];
      res.period -= alpha * d[n];
      if (!(res.period > 0)) {
        // A collapsed period means the ladder should restart rather than
        // the process aborting.
        res.status = diag::SolverStatus::Diverged;
        break;
      }
    }
    if (res.status == diag::SolverStatus::BudgetExceeded ||
        attempt >= opts.maxRetries)
      return res;
    innerTol *= 0.01;
    ++res.retries;
    ws.noteRetry();
  }
}

Real estimatePeriod(const TransientResult& tran, std::size_t index,
                    Real level) {
  RFIC_REQUIRE(tran.x.size() >= 4, "estimatePeriod: trajectory too short");
  std::vector<Real> crossings;
  for (std::size_t k = 1; k < tran.x.size(); ++k) {
    const Real a = tran.x[k - 1][index] - level;
    const Real b = tran.x[k][index] - level;
    if (a < 0 && b >= 0) {
      const Real w = a / (a - b);
      crossings.push_back(tran.time[k - 1] +
                          w * (tran.time[k] - tran.time[k - 1]));
    }
  }
  RFIC_REQUIRE(crossings.size() >= 2,
               "estimatePeriod: fewer than two rising crossings");
  // Average the intervals over the last half of the crossings (startup
  // transient discarded).
  const std::size_t first = crossings.size() / 2;
  const std::size_t count = crossings.size() - 1 - first;
  RFIC_REQUIRE(count >= 1, "estimatePeriod: not enough steady crossings");
  return (crossings.back() - crossings[first]) / static_cast<Real>(count);
}

}  // namespace rfic::analysis
