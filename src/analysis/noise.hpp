// Stationary small-signal noise analysis via the adjoint method.
//
// For each frequency one adjoint solve (G + jωC)ᴴ w = e_out yields the
// transfer from *every* device noise generator to the output at once; the
// output PSD is then  Σ_sources |w(n+) − w(n−)|² · S_source(f).
// This is the per-source sensitivity capability the paper highlights in
// Sections 3 and 5, in its simplest (non-cyclostationary) form; the
// oscillator-specific machinery lives in src/phasenoise.
#pragma once

#include <string>
#include <vector>

#include "circuit/mna.hpp"

namespace rfic::analysis {

using circuit::MnaSystem;
using numeric::RVec;

struct NoiseContribution {
  std::string label;
  Real psd = 0;  ///< contribution to output PSD [V²/Hz]
};

struct NoiseResult {
  std::vector<Real> freq;
  std::vector<Real> totalPsd;  ///< output voltage PSD per frequency [V²/Hz]
  std::vector<std::vector<NoiseContribution>> contributions;
};

/// Output-referred noise PSD at `outNode`, linearized at xop.
NoiseResult noiseAnalysis(const MnaSystem& sys, const RVec& xop, int outNode,
                          const std::vector<Real>& freqs);

}  // namespace rfic::analysis
