#include "analysis/noise.hpp"

#include <cmath>

#include "sparse/sparse_lu.hpp"

namespace rfic::analysis {

NoiseResult noiseAnalysis(const MnaSystem& sys, const RVec& xop, int outNode,
                          const std::vector<Real>& freqs) {
  RFIC_REQUIRE(outNode >= 0, "noiseAnalysis: output node must not be ground");
  const std::size_t n = sys.dim();

  circuit::MnaEval e;
  sys.eval(xop, 0.0, e, true);
  const auto sources = sys.noiseSources(xop);

  NoiseResult out;
  out.freq = freqs;
  out.totalPsd.reserve(freqs.size());
  out.contributions.reserve(freqs.size());

  for (const Real f : freqs) {
    // Assemble Aᴴ = (G + jωC)ᴴ directly: entry (i,j) ← conj(A(j,i)).
    const Real w = kTwoPi * f;
    sparse::CTriplets ah(n, n);
    for (const auto& en : e.G.entries())
      ah.add(en.col, en.row, Complex(en.value, 0.0));
    for (const auto& en : e.C.entries())
      ah.add(en.col, en.row, Complex(0.0, -w * en.value));
    sparse::CSparseLU lu(ah);

    numeric::CVec rhs(n);
    rhs[static_cast<std::size_t>(outNode)] = 1.0;
    const numeric::CVec adj = lu.solve(rhs);

    Real total = 0;
    std::vector<NoiseContribution> contribs;
    contribs.reserve(sources.size());
    for (const auto& src : sources) {
      const Complex hp =
          src.nodePlus >= 0 ? adj[static_cast<std::size_t>(src.nodePlus)] : 0.0;
      const Complex hm = src.nodeMinus >= 0
                             ? adj[static_cast<std::size_t>(src.nodeMinus)]
                             : 0.0;
      const Real gain2 = std::norm(hp - hm);
      const Real s = src.white + (f > 0 ? src.flicker / f : 0.0);
      const Real psd = gain2 * s;
      total += psd;
      contribs.push_back({src.label, psd});
    }
    out.totalPsd.push_back(total);
    out.contributions.push_back(std::move(contribs));
  }
  return out;
}

}  // namespace rfic::analysis
