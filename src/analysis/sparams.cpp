#include "analysis/sparams.hpp"

#include <cmath>

#include "numeric/eig.hpp"
#include "numeric/lu.hpp"
#include "sparse/sparse_lu.hpp"

namespace rfic::analysis {

using numeric::CMat;
using numeric::CVec;

Real SParameters::magDb(std::size_t i, std::size_t j) const {
  const Real m = std::abs(s(i, j));
  return m > 0 ? 20.0 * std::log10(m) : -400.0;
}

SParameters sParameters(const MnaSystem& sys, const numeric::RVec& xop,
                        const std::vector<Port>& ports, Real freqHz,
                        Real z0) {
  RFIC_REQUIRE(!ports.empty(), "sParameters: at least one port");
  RFIC_REQUIRE(z0 > 0, "sParameters: positive reference impedance");
  const std::size_t np = ports.size();

  // Z-matrix: inject 1 A into port j (others open), read port voltages.
  // One factorization serves all ports. Tiny shunt conductances at the
  // port nodes regularize networks that float when every port is open
  // (e.g. a bare series element) — the |S| error is ~Z0·gminPort ≈ 5e-11.
  circuit::MnaEval e;
  sys.eval(xop, 0.0, e, true);
  const std::size_t n = sys.dim();
  sparse::CTriplets a(n, n);
  for (const auto& en : e.G.entries())
    a.add(en.row, en.col, Complex(en.value, 0.0));
  const Real w = kTwoPi * freqHz;
  for (const auto& en : e.C.entries())
    a.add(en.row, en.col, Complex(0.0, w * en.value));
  const Real gminPort = 1e-12;
  for (const auto& p : ports) {
    if (p.nodePlus >= 0)
      a.add(static_cast<std::size_t>(p.nodePlus),
            static_cast<std::size_t>(p.nodePlus), gminPort);
    if (p.nodeMinus >= 0)
      a.add(static_cast<std::size_t>(p.nodeMinus),
            static_cast<std::size_t>(p.nodeMinus), gminPort);
  }
  const sparse::CSparseLU lu0(a);

  CMat z(np, np);
  for (std::size_t j = 0; j < np; ++j) {
    const CVec u = acStimulusCurrent(sys, ports[j].nodeMinus,
                                     ports[j].nodePlus, {1.0, 0.0});
    const CVec x = lu0.solve(u);
    for (std::size_t i = 0; i < np; ++i) {
      const Complex vp = ports[i].nodePlus >= 0
                             ? x[static_cast<std::size_t>(ports[i].nodePlus)]
                             : 0.0;
      const Complex vm = ports[i].nodeMinus >= 0
                             ? x[static_cast<std::size_t>(ports[i].nodeMinus)]
                             : 0.0;
      z(i, j) = vp - vm;
    }
  }

  // S = (Z − Z0 I)(Z + Z0 I)⁻¹.
  CMat num = z, den = z;
  for (std::size_t i = 0; i < np; ++i) {
    num(i, i) -= z0;
    den(i, i) += z0;
  }
  SParameters out;
  out.freq = freqHz;
  // Solve (Z + Z0)ᵀ Xᵀ = (Z − Z0)ᵀ  ⇔  X = num · den⁻¹.
  const numeric::CLU lu(den.transposed());  // NOLINT (small dense)
  out.s = CMat(np, np);
  CVec col(np);
  const CMat numT = num.transposed();
  for (std::size_t i = 0; i < np; ++i) {
    for (std::size_t k = 0; k < np; ++k) col[k] = numT(k, i);
    const CVec row = lu.solve(col);
    for (std::size_t k = 0; k < np; ++k) out.s(i, k) = row[k];
  }
  return out;
}

std::vector<SParameters> sParameterSweep(const MnaSystem& sys,
                                         const numeric::RVec& xop,
                                         const std::vector<Port>& ports,
                                         const std::vector<Real>& freqs,
                                         Real z0) {
  std::vector<SParameters> out;
  out.reserve(freqs.size());
  for (const Real f : freqs) out.push_back(sParameters(sys, xop, ports, f, z0));
  return out;
}

bool isPassiveSample(const SParameters& sp, Real tol) {
  // Eigenvalues of the Hermitian matrix I − SᴴS must be ≥ −tol.
  const std::size_t n = sp.s.rows();
  CMat m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      Complex acc = (i == j) ? Complex(1.0, 0.0) : Complex(0.0, 0.0);
      for (std::size_t k = 0; k < n; ++k)
        acc -= std::conj(sp.s(k, i)) * sp.s(k, j);
      m(i, j) = acc;
    }
  }
  const numeric::CVec eig = numeric::eigenvalues(m);
  for (std::size_t i = 0; i < n; ++i)
    if (eig[i].real() < -tol) return false;
  return true;
}

}  // namespace rfic::analysis
