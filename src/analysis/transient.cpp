#include "analysis/transient.hpp"

#include "diag/contracts.hpp"

#include <cmath>
#include <random>

#include "sparse/sparse_lu.hpp"

namespace rfic::analysis {

namespace {

// Apply a triplet matrix to every column of S: out = T·S (dense result).
numeric::RMat tripletsTimesDense(const sparse::RTriplets& t,
                                 const numeric::RMat& s) {
  numeric::RMat out(t.rows(), s.cols());
  for (const auto& e : t.entries()) {
    if (diag::exactlyZero(e.value)) continue;
    for (std::size_t j = 0; j < s.cols(); ++j)
      out(e.row, j) += e.value * s(e.col, j);
  }
  return out;
}

}  // namespace

bool integrateStep(const MnaSystem& sys, IntegrationMethod method, Real t0,
                   Real h, const RVec& x0, const RVec* xPrevStep, RVec& x1,
                   numeric::RMat* sensitivity, std::size_t maxNewton,
                   Real tol, std::size_t* newtonIters) {
  const std::size_t n = sys.dim();
  const Real t1 = t0 + h;

  // History evaluation at (x0, t0).
  circuit::MnaEval e0;
  const bool needHist = (method != IntegrationMethod::backwardEuler) ||
                        (sensitivity != nullptr);
  sys.eval(x0, t0, e0, sensitivity != nullptr);
  circuit::MnaEval ePrev;
  if (method == IntegrationMethod::gear2 && xPrevStep) {
    RFIC_REQUIRE(sensitivity == nullptr,
                 "integrateStep: Gear-2 does not propagate sensitivities");
    sys.eval(*xPrevStep, t0 - h, ePrev, false);
  }
  (void)needHist;

  x1 = x0;
  RVec xIter = x0;
  circuit::MnaEval e1;
  bool converged = false;
  for (std::size_t it = 0; it < maxNewton; ++it) {
    if (newtonIters) ++*newtonIters;
    sys.eval(x1, t1, e1, true, it > 0 ? &xIter : nullptr);
    RVec r(n);
    Real jacQ = 0, jacG = 0;  // coefficients J = jacQ·C1 + jacG·G1
    switch (method) {
      case IntegrationMethod::backwardEuler:
        for (std::size_t i = 0; i < n; ++i)
          r[i] = e1.q[i] - e0.q[i] + h * (e1.f[i] - e1.b[i]);
        jacQ = 1.0;
        jacG = h;
        break;
      case IntegrationMethod::trapezoidal:
        for (std::size_t i = 0; i < n; ++i)
          r[i] = e1.q[i] - e0.q[i] +
                 0.5 * h * (e1.f[i] - e1.b[i] + e0.f[i] - e0.b[i]);
        jacQ = 1.0;
        jacG = 0.5 * h;
        break;
      case IntegrationMethod::gear2:
        if (xPrevStep) {
          for (std::size_t i = 0; i < n; ++i)
            r[i] = 1.5 * e1.q[i] - 2.0 * e0.q[i] + 0.5 * ePrev.q[i] +
                   h * (e1.f[i] - e1.b[i]);
          jacQ = 1.5;
          jacG = h;
        } else {  // BDF1 start-up step
          for (std::size_t i = 0; i < n; ++i)
            r[i] = e1.q[i] - e0.q[i] + h * (e1.f[i] - e1.b[i]);
          jacQ = 1.0;
          jacG = h;
        }
        break;
    }
    const Real rnorm = numeric::normInf(r);
    // Residual is in charge units; scale tolerance by h to make it a
    // current tolerance.
    if (rnorm < tol * std::max(h, 1e-30)) {
      converged = true;
      break;
    }

    sparse::RTriplets j(n, n);
    for (const auto& en : e1.C.entries()) j.add(en.row, en.col, jacQ * en.value);
    for (const auto& en : e1.G.entries()) j.add(en.row, en.col, jacG * en.value);
    try {
      sparse::RSparseLU lu(j);
      const RVec dx = lu.solve(r);
      xIter = x1;
      x1 -= dx;
      if (numeric::norm2(dx) < tol * (1.0 + numeric::norm2(x1))) {
        converged = true;
        // One more residual evaluation next loop iteration would confirm;
        // accept here to avoid an extra factorization.
        break;
      }
    } catch (const NumericalError&) {
      return false;
    }
  }
  if (!converged) return false;

  if (sensitivity) {
    // dx1/dx0 from the converged step:
    //   BE:   (C1 + h·G1)·dx1 = C0·dx0
    //   trap: (C1 + h/2·G1)·dx1 = (C0 − h/2·G0)·dx0
    circuit::MnaEval ej;
    sys.eval(x1, t1, ej, true);
    const Real gw = (method == IntegrationMethod::trapezoidal) ? 0.5 * h : h;
    sparse::RTriplets j(n, n);
    for (const auto& en : ej.C.entries()) j.add(en.row, en.col, en.value);
    for (const auto& en : ej.G.entries()) j.add(en.row, en.col, gw * en.value);
    sparse::RSparseLU lu(j);

    sparse::RTriplets rhsOp(n, n);
    for (const auto& en : e0.C.entries()) rhsOp.add(en.row, en.col, en.value);
    if (method == IntegrationMethod::trapezoidal) {
      for (const auto& en : e0.G.entries())
        rhsOp.add(en.row, en.col, -0.5 * h * en.value);
    }
    const numeric::RMat rhs = tripletsTimesDense(rhsOp, *sensitivity);
    numeric::RMat out(n, sensitivity->cols());
    RVec col(n);
    for (std::size_t c = 0; c < rhs.cols(); ++c) {
      for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, c);
      const RVec sol = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) out(i, c) = sol[i];
    }
    *sensitivity = std::move(out);
  }
  return true;
}

TransientResult runTransient(const MnaSystem& sys, const RVec& x0,
                             const TransientOptions& opts) {
  RFIC_REQUIRE(opts.tstop > opts.tstart, "runTransient: tstop must exceed tstart");
  RFIC_REQUIRE(opts.dt > 0, "runTransient: dt must be positive");
  TransientResult res;
  const Real dtMin = opts.dtMin > 0 ? opts.dtMin : opts.dt * 1e-6;

  Real t = opts.tstart;
  Real h = opts.dt;
  RVec x = x0;
  RVec xPrev;        // state one accepted step back (for Gear-2 / LTE)
  Real hPrev = 0.0;
  bool havePrev = false;

  // Local truncation error applies to *dynamic* unknowns only: algebraic
  // components (source branch currents, purely resistive nodes) may jump
  // with the excitation and must not drive step rejection.
  std::vector<char> dynamicMask(x0.size(), 0);
  if (opts.adaptive) {
    circuit::MnaEval e0;
    sys.eval(x0, opts.tstart, e0, true);
    for (const auto& en : e0.C.entries())
      if (!diag::exactlyZero(en.value)) dynamicMask[en.row] = 1;
  }

  res.time.push_back(t);
  res.x.push_back(x);

  while (t < opts.tstop - 1e-12 * opts.tstop) {
    h = std::min(h, opts.tstop - t);
    RVec x1;
    const bool ok = integrateStep(
        sys, opts.method, t, h, x, havePrev ? &xPrev : nullptr, x1, nullptr,
        opts.maxNewton, opts.newtonTol, &res.newtonIterations);
    if (!ok) {
      h *= 0.5;
      if (h < dtMin) return res;  // res.ok stays false
      continue;
    }

    bool accept = true;
    if (opts.adaptive && havePrev) {
      // Divided-difference LTE proxy: compare against linear extrapolation
      // of the last two accepted points.
      Real err = 0;
      for (std::size_t i = 0; i < x1.size(); ++i) {
        if (!dynamicMask[i]) continue;
        const Real pred = x[i] + (x[i] - xPrev[i]) * (h / hPrev);
        const Real tolI = opts.reltol * std::abs(x1[i]) + opts.abstol;
        err = std::max(err, std::abs(x1[i] - pred) / tolI);
      }
      if (err > 10.0 && h > dtMin) {
        h = std::max(dtMin, 0.5 * h);
        accept = false;
      } else if (err < 0.5) {
        h = std::min(opts.dt, 1.6 * h);
      }
    }
    if (!accept) continue;

    xPrev = x;
    hPrev = h;
    havePrev = true;
    x = x1;
    t += h;
    ++res.steps;
    if (opts.storeWaveforms) {
      res.time.push_back(t);
      res.x.push_back(x);
    }
  }
  if (!opts.storeWaveforms) {
    res.time.assign(1, t);
    res.x.assign(1, x);
  }
  res.ok = true;
  return res;
}

TransientResult runNoisyTransient(const MnaSystem& sys, const RVec& x0,
                                  const TransientOptions& opts,
                                  std::uint64_t seed) {
  RFIC_REQUIRE(opts.dt > 0, "runNoisyTransient: dt must be positive");
  TransientResult res;
  std::mt19937_64 rng(seed);
  std::normal_distribution<Real> gauss(0.0, 1.0);

  const std::size_t n = sys.dim();
  Real t = opts.tstart;
  RVec x = x0;
  res.time.push_back(t);
  res.x.push_back(x);
  const Real h = opts.dt;

  circuit::MnaEval e0, e1;
  while (t < opts.tstop - 1e-12 * opts.tstop) {
    // Sample device noise at the current operating point (cyclostationary
    // modulation happens automatically through the x-dependence).
    const auto sources = sys.noiseSources(x);
    RVec inoise(n, 0.0);
    for (const auto& src : sources) {
      // One-sided white PSD S → discrete variance S/(2h).
      const Real sigma =
          std::sqrt(opts.noiseScale * std::max(0.0, src.white) / (2.0 * h));
      const Real val = sigma * gauss(rng);
      if (src.nodePlus >= 0) inoise[static_cast<std::size_t>(src.nodePlus)] -= val;
      if (src.nodeMinus >= 0) inoise[static_cast<std::size_t>(src.nodeMinus)] += val;
    }

    // One BE Newton solve with the noise current on the RHS.
    sys.eval(x, t, e0, false);
    RVec x1 = x;
    RVec xIter = x;
    bool converged = false;
    for (std::size_t it = 0; it < opts.maxNewton; ++it) {
      ++res.newtonIterations;
      sys.eval(x1, t + h, e1, true, it > 0 ? &xIter : nullptr);
      RVec r(n);
      for (std::size_t i = 0; i < n; ++i)
        r[i] = e1.q[i] - e0.q[i] + h * (e1.f[i] - e1.b[i] - inoise[i]);
      if (numeric::normInf(r) < opts.newtonTol * h) {
        converged = true;
        break;
      }
      sparse::RTriplets j(n, n);
      for (const auto& en : e1.C.entries()) j.add(en.row, en.col, en.value);
      for (const auto& en : e1.G.entries()) j.add(en.row, en.col, h * en.value);
      sparse::RSparseLU lu(j);
      const RVec dx = lu.solve(r);
      xIter = x1;
      x1 -= dx;
      if (numeric::norm2(dx) < opts.newtonTol * (1.0 + numeric::norm2(x1))) {
        converged = true;
        break;
      }
    }
    if (!converged) return res;
    x = x1;
    t += h;
    ++res.steps;
    if (opts.storeWaveforms) {
      res.time.push_back(t);
      res.x.push_back(x);
    }
  }
  if (!opts.storeWaveforms) {
    res.time.assign(1, t);
    res.x.assign(1, x);
  }
  res.ok = true;
  return res;
}

}  // namespace rfic::analysis
