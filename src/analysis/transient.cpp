#include "analysis/transient.hpp"

#include "diag/contracts.hpp"
#include "diag/resilience.hpp"

#include <cmath>
#include <limits>
#include <optional>
#include <random>

#include "sparse/sparse_lu.hpp"

namespace rfic::analysis {

namespace {

// Apply a triplet matrix to every column of S: out = T·S (dense result).
numeric::RMat tripletsTimesDense(const sparse::RTriplets& t,
                                 const numeric::RMat& s) {
  numeric::RMat out(t.rows(), s.cols());
  for (const auto& e : t.entries()) {
    if (diag::exactlyZero(e.value)) continue;
    for (std::size_t j = 0; j < s.cols(); ++j)
      out(e.row, j) += e.value * s(e.col, j);
  }
  return out;
}

// Time-discretization residual and Jacobian combination J = jacQ·C + jacG·G
// for one Newton iterate — the one shared assembly for BE / trapezoidal /
// Gear-2 regardless of whether the evaluation came from an MnaEval or an
// MnaWorkspace.
void assembleResidual(IntegrationMethod method, Real h, bool haveGearHist,
                      const RVec& q1, const RVec& f1, const RVec& b1,
                      const RVec& q0, const RVec& f0, const RVec& b0,
                      const RVec& qPrev, RVec& r, Real& jacQ, Real& jacG) {
  const std::size_t n = q1.size();
  r.resize(n);  // rt: allow(rt-alloc) grow-once caller scratch — a no-op on
                // every iteration after the first
  switch (method) {
    case IntegrationMethod::backwardEuler:
      for (std::size_t i = 0; i < n; ++i)
        r[i] = q1[i] - q0[i] + h * (f1[i] - b1[i]);
      jacQ = 1.0;
      jacG = h;
      break;
    case IntegrationMethod::trapezoidal:
      for (std::size_t i = 0; i < n; ++i)
        r[i] = q1[i] - q0[i] + 0.5 * h * (f1[i] - b1[i] + f0[i] - b0[i]);
      jacQ = 1.0;
      jacG = 0.5 * h;
      break;
    case IntegrationMethod::gear2:
      if (haveGearHist) {
        for (std::size_t i = 0; i < n; ++i)
          r[i] = 1.5 * q1[i] - 2.0 * q0[i] + 0.5 * qPrev[i] +
                 h * (f1[i] - b1[i]);
        jacQ = 1.5;
        jacG = h;
      } else {  // BDF1 start-up step
        for (std::size_t i = 0; i < n; ++i)
          r[i] = q1[i] - q0[i] + h * (f1[i] - b1[i]);
        jacQ = 1.0;
        jacG = h;
      }
      break;
  }
}

// A non-finite residual entry fails the step immediately: letting a NaN
// ride through the linear solve would poison x1 and every later iterate.
// (Max-based norms can mask a leading NaN — std::max(0, NaN) keeps 0 — so
// the entries are scanned directly.) The nan-in-residual fault point
// poisons one entry to exercise exactly this detection.
bool residualFinite(RVec& r) {
  if (diag::FaultInjector::global().fire(diag::FaultPoint::NanInResidual))
    r[0] = std::numeric_limits<Real>::quiet_NaN();
  for (std::size_t i = 0; i < r.size(); ++i)
    if (!std::isfinite(r[i])) return false;
  return true;
}

}  // namespace

bool integrateStep(const MnaSystem& sys, IntegrationMethod method, Real t0,
                   Real h, const RVec& x0, const RVec* xPrevStep, RVec& x1,
                   numeric::RMat* sensitivity, std::size_t maxNewton,
                   Real tol, std::size_t* newtonIters) {
  const std::size_t n = sys.dim();
  const Real t1 = t0 + h;

  // History evaluation at (x0, t0).
  circuit::MnaEval e0;
  sys.eval(x0, t0, e0, sensitivity != nullptr);
  circuit::MnaEval ePrev;
  const bool haveGearHist =
      method == IntegrationMethod::gear2 && xPrevStep != nullptr;
  if (haveGearHist) {
    RFIC_REQUIRE(sensitivity == nullptr,
                 "integrateStep: Gear-2 does not propagate sensitivities");
    sys.eval(*xPrevStep, t0 - h, ePrev, false);
  }

  x1 = x0;
  RVec xIter = x0;
  circuit::MnaEval e1;
  RVec r;
  bool converged = false;
  // Set after a small-update iterate: the next residual evaluation (cheap —
  // no factorization) confirms the step instead of accepting it blind.
  bool confirmPending = false;
  Real confirmRnorm = 0;
  for (std::size_t it = 0; it < maxNewton; ++it) {
    if (newtonIters) ++*newtonIters;
    sys.eval(x1, t1, e1, true, it > 0 ? &xIter : nullptr);
    Real jacQ = 0, jacG = 0;
    assembleResidual(method, h, haveGearHist, e1.q, e1.f, e1.b, e0.q, e0.f,
                     e0.b, ePrev.q, r, jacQ, jacG);
    if (!residualFinite(r)) return false;
    const Real rnorm = numeric::normInf(r);
    // Residual is in charge units; scale tolerance by h to make it a
    // current tolerance.
    if (rnorm < tol * std::max(h, 1e-30)) {
      converged = true;
      break;
    }
    // Confirming evaluation after a converged-by-update iterate: accept if
    // the final update did not make the residual worse (a NaN or a jump out
    // of the Newton basin fails this and keeps iterating).
    if (confirmPending && rnorm <= 2.0 * confirmRnorm) {
      converged = true;
      break;
    }
    confirmPending = false;

    sparse::RTriplets j(n, n);
    for (const auto& en : e1.C.entries()) j.add(en.row, en.col, jacQ * en.value);
    for (const auto& en : e1.G.entries()) j.add(en.row, en.col, jacG * en.value);
    try {
      if (diag::FaultInjector::global().fire(
              diag::FaultPoint::SingularJacobian))
        failNumerical("integrateStep: injected singular Jacobian");
      sparse::RSparseLU lu(j);
      const RVec dx = lu.solve(r);
      xIter = x1;
      x1 -= dx;
      if (numeric::norm2(dx) < tol * (1.0 + numeric::norm2(x1))) {
        confirmPending = true;
        confirmRnorm = rnorm;
      }
    } catch (const NumericalError&) {
      return false;
    }
  }
  if (!converged) return false;

  if (sensitivity) {
    // dx1/dx0 from the converged step:
    //   BE:   (C1 + h·G1)·dx1 = C0·dx0
    //   trap: (C1 + h/2·G1)·dx1 = (C0 − h/2·G0)·dx0
    circuit::MnaEval ej;
    sys.eval(x1, t1, ej, true);
    const Real gw = (method == IntegrationMethod::trapezoidal) ? 0.5 * h : h;
    sparse::RTriplets j(n, n);
    for (const auto& en : ej.C.entries()) j.add(en.row, en.col, en.value);
    for (const auto& en : ej.G.entries()) j.add(en.row, en.col, gw * en.value);
    sparse::RSparseLU lu(j);

    sparse::RTriplets rhsOp(n, n);
    for (const auto& en : e0.C.entries()) rhsOp.add(en.row, en.col, en.value);
    if (method == IntegrationMethod::trapezoidal) {
      for (const auto& en : e0.G.entries())
        rhsOp.add(en.row, en.col, -0.5 * h * en.value);
    }
    const numeric::RMat rhs = tripletsTimesDense(rhsOp, *sensitivity);
    numeric::RMat out(n, sensitivity->cols());
    RVec col(n);
    for (std::size_t c = 0; c < rhs.cols(); ++c) {
      for (std::size_t i = 0; i < n; ++i) col[i] = rhs(i, c);
      const RVec sol = lu.solve(col);
      for (std::size_t i = 0; i < n; ++i) out(i, c) = sol[i];
    }
    *sensitivity = std::move(out);
  }
  return true;
}

// The transient inner step: one Gear-2/trapezoidal Newton solve. Marked
// real-time for the per-iteration body — the per-step history snapshots
// before the loop are the audited exceptions below.
RFIC_REALTIME bool integrateStep(circuit::MnaWorkspace& ws,
                                 IntegrationMethod method, Real t0, Real h,
                                 const RVec& x0, const RVec* xPrevStep,
                                 RVec& x1, numeric::RMat* sensitivity,
                                 std::size_t maxNewton, Real tol,
                                 std::size_t* newtonIters) {
  const std::size_t n = ws.dim();
  const Real t1 = t0 + h;
  const bool wantSens = sensitivity != nullptr;

  // History evaluation at (x0, t0); the workspace buffers are reused every
  // evaluation, so history vectors (and, for the sensitivity path, the C0/
  // G0 value arrays) are copied out.
  ws.eval(x0, t0, wantSens);
  // rt: allow(rt-alloc) per-step history snapshot (once per step, outside
  // the Newton iteration; the workspace eval buffers are overwritten every
  // iteration so the t0 values must be copied out)
  RVec q0 = ws.q(), f0 = ws.f(), b0 = ws.b();
  std::vector<Real> c0Vals, g0Vals;
  std::size_t c0Version = 0;
  if (wantSens) {
    c0Vals = ws.cValues();  // rt: allow(rt-alloc) sensitivity-path snapshot,
                            // once per step
    g0Vals = ws.gValues();  // rt: allow(rt-alloc) sensitivity-path snapshot
    c0Version = ws.patternVersion();
  }
  RVec qPrev;
  const bool haveGearHist =
      method == IntegrationMethod::gear2 && xPrevStep != nullptr;
  if (haveGearHist) {
    RFIC_REQUIRE(sensitivity == nullptr,
                 "integrateStep: Gear-2 does not propagate sensitivities");
    ws.eval(*xPrevStep, t0 - h, false);
    qPrev = ws.q();
  }

  x1 = x0;
  RVec xIter = x0;  // rt: allow(rt-alloc) per-step iterate snapshot
  RVec r;           // grows once in assembleResidual, then reused
  RVec dx;          // grows once in ws.solve(r, dx), then reused
  bool converged = false;
  bool confirmPending = false;
  Real confirmRnorm = 0;
  for (std::size_t it = 0; it < maxNewton; ++it) {
    if (newtonIters) ++*newtonIters;
    ws.eval(x1, t1, true, it > 0 ? &xIter : nullptr);
    Real jacQ = 0, jacG = 0;
    assembleResidual(method, h, haveGearHist, ws.q(), ws.f(), ws.b(), q0, f0,
                     b0, qPrev, r, jacQ, jacG);
    if (!residualFinite(r)) return false;
    const Real rnorm = numeric::normInf(r);
    if (rnorm < tol * std::max(h, 1e-30)) {
      converged = true;
      break;
    }
    if (confirmPending && rnorm <= 2.0 * confirmRnorm) {
      converged = true;
      break;
    }
    confirmPending = false;

    try {
      if (diag::FaultInjector::global().fire(
              diag::FaultPoint::SingularJacobian))
        failNumerical("integrateStep: injected singular Jacobian");
      // First call factors symbolically; later iterations (and steps)
      // replay the recorded elimination on the new values, and the solve
      // writes into loop-scoped scratch — no per-iteration allocation.
      ws.factorJacobian(jacQ, jacG);
      ws.solve(r, dx);
      xIter = x1;
      x1 -= dx;
      if (numeric::norm2(dx) < tol * (1.0 + numeric::norm2(x1))) {
        confirmPending = true;
        confirmRnorm = rnorm;
      }
    } catch (const NumericalError&) {
      return false;
    }
  }
  if (!converged) return false;

  if (sensitivity) {
    const Real gw = (method == IntegrationMethod::trapezoidal) ? 0.5 * h : h;
    // The pattern may have grown during the Newton loop; the cached C0/G0
    // value arrays must match the pattern the final Jacobian uses.
    for (;;) {
      if (c0Version != ws.patternVersion()) {
        ws.eval(x0, t0, true);
        c0Vals = ws.cValues();
        g0Vals = ws.gValues();
        c0Version = ws.patternVersion();
      }
      ws.eval(x1, t1, true);
      if (ws.patternVersion() == c0Version) break;
    }
    ws.factorJacobian(1.0, gw);

    const auto& pat = ws.pattern();
    // rt: allow(rt-alloc) sensitivity epilogue: runs once per accepted step
    // after Newton converged, never inside the iteration
    numeric::RMat out(n, sensitivity->cols());
    RVec col(n), y(n), yg(n), sol;  // rt: allow(rt-alloc) sensitivity epilogue
    for (std::size_t c = 0; c < sensitivity->cols(); ++c) {
      for (std::size_t i = 0; i < n; ++i) col[i] = (*sensitivity)(i, c);
      pat.multiplyWith(c0Vals, col, y);
      if (method == IntegrationMethod::trapezoidal) {
        pat.multiplyWith(g0Vals, col, yg);
        for (std::size_t i = 0; i < n; ++i) y[i] -= gw * yg[i];
      }
      ws.solve(y, sol);
      for (std::size_t i = 0; i < n; ++i) out(i, c) = sol[i];
    }
    *sensitivity = std::move(out);
  }
  return true;
}

TransientResult runTransient(const MnaSystem& sys, const RVec& x0,
                             const TransientOptions& opts) {
  RFIC_REQUIRE(opts.tstop > opts.tstart, "runTransient: tstop must exceed tstart");
  RFIC_REQUIRE(opts.dt > 0, "runTransient: dt must be positive");
  TransientResult res;
  const Real dtMin = opts.dtMin > 0 ? opts.dtMin : opts.dt * 1e-6;

  // One workspace for the whole sweep: the sparsity pattern is discovered
  // on the first step and every later Newton iteration refactors in place.
  // A caller-owned workspace (engine context cache) extends the reuse
  // across runs — repeat jobs refactor instead of re-discovering.
  std::optional<circuit::MnaWorkspace> local;
  circuit::MnaWorkspace* ws = nullptr;
  if (opts.workspace != nullptr) {
    RFIC_REQUIRE(&opts.workspace->system() == &sys,
                 "runTransient: workspace bound to a different system");
    ws = opts.workspace;
  } else if (opts.patternCache) {
    ws = &local.emplace(sys);
  }

  const std::size_t n = x0.size();
  Real t = opts.tstart;
  Real h = opts.dt;
  RVec x = x0;
  RVec xPrev;        // state one accepted step back (for Gear-2 / LTE)
  Real hPrev = 0.0;
  bool havePrev = false;

  // Local truncation error applies to *dynamic* unknowns only: algebraic
  // components (source branch currents, purely resistive nodes) may jump
  // with the excitation and must not drive step rejection.
  std::vector<char> dynamicMask(n, 0);

  if (opts.resume) {
    RFIC_REQUIRE(!opts.checkpointPath.empty(),
                 "runTransient: resume requested without a checkpoint path");
    diag::TransientCheckpoint ck;
    if (!diag::loadCheckpoint(opts.checkpointPath, ck))
      failInvalid("runTransient: cannot load checkpoint '" +
                  opts.checkpointPath + "'");
    RFIC_REQUIRE(ck.x.size() == n && ck.dynamicMask.size() == n &&
                     (!ck.havePrev || ck.xPrev.size() == n),
                 "runTransient: checkpoint dimension mismatch");
    t = ck.t;
    h = ck.h;
    hPrev = ck.hPrev;
    havePrev = ck.havePrev;
    for (std::size_t i = 0; i < n; ++i) x[i] = ck.x[i];
    if (havePrev) {
      xPrev = RVec(n);
      for (std::size_t i = 0; i < n; ++i) xPrev[i] = ck.xPrev[i];
    }
    // The mask is restored, not re-derived: deriving it at the resume
    // state could classify rows differently and change step control,
    // breaking bit-identity with the uninterrupted run.
    for (std::size_t i = 0; i < n; ++i)
      dynamicMask[i] = static_cast<char>(ck.dynamicMask[i]);
    res.steps = ck.steps;
    res.newtonIterations = ck.newtonIterations;
    res.retries = ck.retries;
  } else if (opts.adaptive) {
    if (ws) {
      ws->eval(x0, opts.tstart, true);
      const auto& rp = ws->pattern().rowPtr();
      const auto& cv = ws->cValues();
      for (std::size_t row = 0; row < ws->dim(); ++row)
        for (std::size_t p = rp[row]; p < rp[row + 1]; ++p)
          if (!diag::exactlyZero(cv[p])) dynamicMask[row] = 1;
    } else {
      circuit::MnaEval e0;
      sys.eval(x0, opts.tstart, e0, true);
      for (const auto& en : e0.C.entries())
        if (!diag::exactlyZero(en.value)) dynamicMask[en.row] = 1;
    }
  }

  const auto noteRetry = [&] {
    ++res.retries;
    if (ws)
      ws->noteRetry();
    else
      perf::global().addRetry();
  };
  const auto saveCk = [&] {
    if (opts.checkpointPath.empty()) return;
    diag::TransientCheckpoint ck;
    ck.steps = res.steps;
    ck.newtonIterations = res.newtonIterations;
    ck.retries = res.retries;
    ck.t = t;
    ck.h = h;
    ck.hPrev = hPrev;
    ck.havePrev = havePrev;
    ck.x.resize(n);
    for (std::size_t i = 0; i < n; ++i) ck.x[i] = x[i];
    if (havePrev) {
      ck.xPrev.resize(n);
      for (std::size_t i = 0; i < n; ++i) ck.xPrev[i] = xPrev[i];
    }
    ck.dynamicMask.resize(n);
    for (std::size_t i = 0; i < n; ++i)
      ck.dynamicMask[i] = static_cast<unsigned char>(dynamicMask[i]);
    // A failed save must never kill the run it protects; keep stepping.
    diag::saveCheckpoint(opts.checkpointPath, ck);
  };

  res.time.push_back(t);
  res.x.push_back(x);

  perf::Timer sinceSave;
  while (t < opts.tstop - 1e-12 * opts.tstop) {
    if (diag::budgetExceeded(opts.budget)) {
      saveCk();
      res.status = diag::SolverStatus::BudgetExceeded;
      if (ws) res.perf = ws->counters();
      return res;  // res.ok stays false; trajectory so far is valid
    }
    if (!opts.checkpointPath.empty() && opts.checkpointInterval > 0 &&
        sinceSave.ns() >= static_cast<std::uint64_t>(
                              opts.checkpointInterval * 1e9)) {
      saveCk();
      sinceSave = perf::Timer();
    }
    h = std::min(h, opts.tstop - t);
    RVec x1;
    const std::size_t newtonBefore = res.newtonIterations;
    bool ok =
        ws ? integrateStep(*ws, opts.method, t, h, x,
                           havePrev ? &xPrev : nullptr, x1, nullptr,
                           opts.maxNewton, opts.newtonTol,
                           &res.newtonIterations)
           : integrateStep(sys, opts.method, t, h, x,
                           havePrev ? &xPrev : nullptr, x1, nullptr,
                           opts.maxNewton, opts.newtonTol,
                           &res.newtonIterations);
    if (opts.budget)
      opts.budget->chargeNewton(res.newtonIterations - newtonBefore);
    // A converged Newton solve can still hand back a non-finite state
    // (overflow inside a device model on the last update); treat it as a
    // failed step so the dt cut below retries from clean history. This
    // applies in non-adaptive mode too — a fixed-dt run recovers by
    // temporarily shortening the step rather than marching NaNs to tstop.
    if (ok) {
      for (std::size_t i = 0; i < n; ++i)
        if (!std::isfinite(x1[i])) {
          ok = false;
          break;
        }
    }
    if (!ok) {
      h *= 0.5;
      if (h < dtMin) {
        res.status = diag::SolverStatus::StepLimit;
        if (ws) res.perf = ws->counters();
        return res;  // res.ok stays false
      }
      noteRetry();
      continue;
    }

    bool accept = true;
    if (opts.adaptive && havePrev) {
      // Divided-difference LTE proxy: compare against linear extrapolation
      // of the last two accepted points.
      Real err = 0;
      for (std::size_t i = 0; i < x1.size(); ++i) {
        if (!dynamicMask[i]) continue;
        const Real pred = x[i] + (x[i] - xPrev[i]) * (h / hPrev);
        const Real tolI = opts.reltol * std::abs(x1[i]) + opts.abstol;
        err = std::max(err, std::abs(x1[i] - pred) / tolI);
      }
      if (err > 10.0 && h > dtMin) {
        h = std::max(dtMin, 0.5 * h);
        accept = false;
      } else if (err < 0.5) {
        h = std::min(opts.dt, 1.6 * h);
      }
    }
    if (!accept) {
      noteRetry();
      continue;
    }

    xPrev = x;
    hPrev = h;
    havePrev = true;
    x = x1;
    t += h;
    ++res.steps;
    if (opts.storeWaveforms) {
      res.time.push_back(t);
      res.x.push_back(x);
    }
  }
  if (!opts.storeWaveforms) {
    res.time.assign(1, t);
    res.x.assign(1, x);
  }
  if (ws) res.perf = ws->counters();
  res.ok = true;
  res.status = diag::SolverStatus::Converged;
  return res;
}

TransientResult runNoisyTransient(const MnaSystem& sys, const RVec& x0,
                                  const TransientOptions& opts,
                                  std::uint64_t seed) {
  RFIC_REQUIRE(opts.dt > 0, "runNoisyTransient: dt must be positive");
  TransientResult res;
  std::mt19937_64 rng(seed);
  std::normal_distribution<Real> gauss(0.0, 1.0);

  const std::size_t n = sys.dim();
  circuit::MnaWorkspace ws(sys);
  Real t = opts.tstart;
  RVec x = x0;
  res.time.push_back(t);
  res.x.push_back(x);
  const Real h = opts.dt;

  RVec q0, r(n);
  while (t < opts.tstop - 1e-12 * opts.tstop) {
    if (diag::budgetExceeded(opts.budget)) {
      res.status = diag::SolverStatus::BudgetExceeded;
      res.perf = ws.counters();
      return res;
    }
    // Sample device noise at the current operating point (cyclostationary
    // modulation happens automatically through the x-dependence).
    const auto sources = sys.noiseSources(x);
    RVec inoise(n, 0.0);
    for (const auto& src : sources) {
      // One-sided white PSD S → discrete variance S/(2h).
      const Real sigma =
          std::sqrt(opts.noiseScale * std::max(0.0, src.white) / (2.0 * h));
      const Real val = sigma * gauss(rng);
      if (src.nodePlus >= 0) inoise[static_cast<std::size_t>(src.nodePlus)] -= val;
      if (src.nodeMinus >= 0) inoise[static_cast<std::size_t>(src.nodeMinus)] += val;
    }

    // One BE Newton solve with the noise current on the RHS.
    ws.eval(x, t, false);
    q0 = ws.q();
    RVec x1 = x;
    RVec xIter = x;
    bool converged = false;
    for (std::size_t it = 0; it < opts.maxNewton; ++it) {
      ++res.newtonIterations;
      if (opts.budget) opts.budget->chargeNewton();
      ws.eval(x1, t + h, true, it > 0 ? &xIter : nullptr);
      const auto& q1 = ws.q();
      const auto& f1 = ws.f();
      const auto& b1 = ws.b();
      for (std::size_t i = 0; i < n; ++i)
        r[i] = q1[i] - q0[i] + h * (f1[i] - b1[i] - inoise[i]);
      if (numeric::normInf(r) < opts.newtonTol * h) {
        converged = true;
        break;
      }
      ws.factorJacobian(1.0, h);
      const RVec dx = ws.solve(r);
      xIter = x1;
      x1 -= dx;
      if (numeric::norm2(dx) < opts.newtonTol * (1.0 + numeric::norm2(x1))) {
        converged = true;
        break;
      }
    }
    if (!converged) {
      res.status = diag::SolverStatus::MaxIterations;
      res.perf = ws.counters();
      return res;
    }
    x = x1;
    t += h;
    ++res.steps;
    if (opts.storeWaveforms) {
      res.time.push_back(t);
      res.x.push_back(x);
    }
  }
  if (!opts.storeWaveforms) {
    res.time.assign(1, t);
    res.x.assign(1, x);
  }
  res.perf = ws.counters();
  res.ok = true;
  res.status = diag::SolverStatus::Converged;
  return res;
}

}  // namespace rfic::analysis
