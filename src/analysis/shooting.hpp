// Periodic steady state by shooting.
//
// The shooting method finds x0 with Φ_T(x0) = x0, where Φ_T is the state
// transition over one period computed by transient integration; Newton uses
// the monodromy matrix M = ∂Φ_T/∂x0 propagated alongside the trajectory.
// Three roles in this library:
//  * the univariate baseline the MMFT mixer comparison of Fig. 5 times,
//  * the inner solver of the multi-time methods (Section 2.2),
//  * the provider of steady state + monodromy for the Floquet/phase-noise
//    machinery of Section 3 (autonomous variant with unknown period).
#pragma once

#include <vector>

#include "analysis/transient.hpp"
#include "circuit/mna.hpp"
#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "numeric/dense.hpp"

namespace rfic::analysis {

using numeric::RMat;
using numeric::RVec;

struct ShootingOptions {
  std::size_t stepsPerPeriod = 400;
  std::size_t maxIterations = 50;
  Real tolerance = 1e-9;  ///< on ‖Φ(x0) − x0‖
  Real newtonTol = 1e-9;  ///< inner per-step Newton tolerance
  /// Retry ladder depth: a failed outer Newton (breakdown, divergence, or
  /// iteration cap) is re-attempted this many times from the original
  /// guess with newtonTol tightened 100× per rung — integration error
  /// contaminating the monodromy is the usual culprit.
  std::size_t maxRetries = 1;
  /// Optional cooperative budget (outer Newton iterations are charged; a
  /// trip returns SolverStatus::BudgetExceeded and suppresses retries).
  diag::RunBudget* budget = nullptr;
  /// Backward Euler by default: trapezoidal integration propagates the
  /// sensitivity of *algebraic* MNA unknowns (source branches, resistive
  /// nodes) with a factor −1 per step, so after an even step count the
  /// discrete monodromy acquires an exact +1 eigenvalue and Newton's
  /// (M − I) goes singular. BE propagates those components to the
  /// physically-correct 0 and is robust for the stiff switching circuits
  /// the MPDE methods target.
  IntegrationMethod method = IntegrationMethod::backwardEuler;
};

struct PSSResult {
  bool converged = false;
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  Real period = 0;
  IntegrationMethod method = IntegrationMethod::backwardEuler;
  RVec x0;                       ///< state at t = 0 on the periodic orbit
  std::vector<Real> times;       ///< stepsPerPeriod+1 sample instants
  std::vector<RVec> trajectory;  ///< states at `times`
  RMat monodromy;                ///< ∂Φ_T/∂x0 at the solution
  std::size_t newtonIterations = 0;  ///< total across all attempts
  std::size_t retries = 0;           ///< tightened-tolerance re-attempts
};

/// PSS of a periodically driven circuit with known period.
PSSResult shootingPSS(const circuit::MnaSystem& sys, Real period,
                      const RVec& guess, const ShootingOptions& opts = {});

/// PSS of an autonomous oscillator: the period is an extra unknown and the
/// phase is pinned by the condition x0[anchorIndex] = anchorValue (pick a
/// value the orbit crosses transversally, e.g. from a transient run).
/// Requires an invertible C(x) (state at every node), as the extra Jacobian
/// column is ẋ(T) = C⁻¹(b − f).
PSSResult shootingOscillatorPSS(const circuit::MnaSystem& sys,
                                Real periodGuess, const RVec& guess,
                                std::size_t anchorIndex, Real anchorValue,
                                const ShootingOptions& opts = {});

/// Estimate the oscillation period from the last stretch of a transient by
/// averaging intervals between rising zero crossings of x[index] − level.
Real estimatePeriod(const TransientResult& tran, std::size_t index,
                    Real level);

}  // namespace rfic::analysis
