#include "analysis/ac.hpp"

#include <cmath>

#include "sparse/sparse_lu.hpp"

namespace rfic::analysis {

namespace {

sparse::CTriplets acMatrix(const MnaSystem& sys, const RVec& xop,
                           Real freqHz) {
  circuit::MnaEval e;
  sys.eval(xop, 0.0, e, true);
  const std::size_t n = sys.dim();
  sparse::CTriplets a(n, n);
  for (const auto& en : e.G.entries()) a.add(en.row, en.col, Complex(en.value, 0.0));
  const Real w = kTwoPi * freqHz;
  for (const auto& en : e.C.entries()) a.add(en.row, en.col, Complex(0.0, w * en.value));
  return a;
}

}  // namespace

CVec acSolve(const MnaSystem& sys, const RVec& xop, Real freqHz,
             const CVec& stimulus) {
  RFIC_REQUIRE(stimulus.size() == sys.dim(), "acSolve: stimulus size mismatch");
  sparse::CSparseLU lu(acMatrix(sys, xop, freqHz));
  return lu.solve(stimulus);
}

ACResult acSweep(const MnaSystem& sys, const RVec& xop,
                 const std::vector<Real>& freqs, const CVec& stimulus) {
  ACResult out;
  out.freq = freqs;
  out.x.reserve(freqs.size());
  for (const Real f : freqs) out.x.push_back(acSolve(sys, xop, f, stimulus));
  return out;
}

CVec acStimulusVSource(const MnaSystem& sys, const circuit::VSource& src,
                       Complex amplitude) {
  CVec u(sys.dim());
  u[static_cast<std::size_t>(src.branch())] = amplitude;
  return u;
}

CVec acStimulusCurrent(const MnaSystem& sys, int nodePlus, int nodeMinus,
                       Complex amplitude) {
  CVec u(sys.dim());
  if (nodePlus >= 0) u[static_cast<std::size_t>(nodePlus)] -= amplitude;
  if (nodeMinus >= 0) u[static_cast<std::size_t>(nodeMinus)] += amplitude;
  return u;
}

std::vector<Real> logspace(Real fStart, Real fStop, std::size_t n) {
  RFIC_REQUIRE(fStart > 0 && fStop > fStart && n >= 2,
               "logspace: need 0 < fStart < fStop and n >= 2");
  std::vector<Real> f(n);
  const Real l0 = std::log10(fStart), l1 = std::log10(fStop);
  for (std::size_t i = 0; i < n; ++i)
    f[i] = std::pow(10.0, l0 + (l1 - l0) * static_cast<Real>(i) /
                              static_cast<Real>(n - 1));
  return f;
}

}  // namespace rfic::analysis
