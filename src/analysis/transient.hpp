// Time-domain transient analysis: backward Euler, trapezoidal, and Gear-2
// integration with Newton inner loops and optional local-truncation-error
// step control.
//
// The paper's Section 2 argument starts here: for an RF circuit driven at
// 1.62 GHz with an 80 kHz baseband, a conventional transient must resolve
// hundreds of thousands of carrier cycles to see one baseband period. The
// transient engine is therefore both a substrate (initial conditions,
// shooting, Monte-Carlo noise ensembles) and the baseline the multi-scale
// methods are measured against (Fig. 5).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "circuit/mna.hpp"
#include "circuit/mna_workspace.hpp"
#include "diag/convergence.hpp"
#include "diag/resilience.hpp"
#include "perf/perf.hpp"

namespace rfic::analysis {

using circuit::MnaSystem;
using numeric::RVec;

enum class IntegrationMethod { backwardEuler, trapezoidal, gear2 };

struct TransientOptions {
  Real tstart = 0.0;
  Real tstop = 0.0;
  Real dt = 0.0;                 ///< base (maximum) step
  IntegrationMethod method = IntegrationMethod::trapezoidal;
  bool adaptive = false;         ///< LTE-based step control
  Real reltol = 1e-4;
  Real abstol = 1e-9;
  Real dtMin = 0.0;              ///< 0 → dt/1e6
  std::size_t maxNewton = 50;
  Real newtonTol = 1e-9;
  bool storeWaveforms = true;    ///< keep every accepted point
  Real noiseScale = 1.0;         ///< PSD multiplier in runNoisyTransient
  /// Use the MnaWorkspace pattern-cached pipeline (cached sparsity +
  /// symbolic/numeric LU split). Off = the original rebuild-everything
  /// path, kept for A/B benchmarking.
  bool patternCache = true;
  /// Optional caller-owned workspace (must be built on the same MnaSystem;
  /// implies the pattern-cached path). The engine layer passes a per-
  /// topology cached workspace here so repeat jobs skip pattern discovery
  /// and reuse the recorded SymbolicLU pivot order.
  circuit::MnaWorkspace* workspace = nullptr;
  /// Optional cooperative budget, polled at every step boundary and charged
  /// with the Newton iterations of each attempt. On trip the run saves a
  /// checkpoint (if checkpointPath is set) and returns the partial
  /// trajectory with SolverStatus::BudgetExceeded.
  diag::RunBudget* budget = nullptr;
  /// Checkpoint file ("" = checkpointing off). Written atomically on budget
  /// expiry and, when checkpointInterval > 0, every that-many wall seconds.
  std::string checkpointPath;
  Real checkpointInterval = 0.0;  ///< wall seconds between periodic saves
  /// Load checkpointPath before stepping and continue from its state
  /// (bit-identically: the checkpoint carries the full stepping recurrence
  /// input). Throws InvalidArgument if the file is missing or malformed.
  bool resume = false;
};

struct TransientResult {
  std::vector<Real> time;
  std::vector<RVec> x;
  bool ok = false;
  /// Why the sweep ended: Converged (reached tstop), StepLimit (dt cut
  /// below dtMin with the step still failing), BudgetExceeded, or
  /// MaxIterations (noisy path's Newton loop exhausted).
  diag::SolverStatus status = diag::SolverStatus::NotRun;
  std::size_t steps = 0;
  std::size_t newtonIterations = 0;
  std::size_t retries = 0;  ///< failed/rejected step attempts (dt cuts, LTE)
  perf::Snapshot perf;  ///< pipeline counters (pattern-cached path only)
};

/// Integrate the circuit DAE from x0. If opts.storeWaveforms is false only
/// the final state is kept (trajectory has one entry).
TransientResult runTransient(const MnaSystem& sys, const RVec& x0,
                             const TransientOptions& opts);

/// One integration step from (t0, x0) to t0+h. `xPrevStep` supplies the
/// history state for Gear-2 (pass nullptr to fall back to BE on the first
/// step). On return x1 holds the new state; when `sensitivity` is non-null
/// it is updated in place: S ← (∂x1/∂x0)·S, the propagation used to build
/// the monodromy matrix in shooting and Floquet analyses.
bool integrateStep(const MnaSystem& sys, IntegrationMethod method, Real t0,
                   Real h, const RVec& x0, const RVec* xPrevStep, RVec& x1,
                   numeric::RMat* sensitivity, std::size_t maxNewton = 50,
                   Real tol = 1e-9, std::size_t* newtonIters = nullptr);

/// Pattern-cached variant: the workspace's sparsity pattern and LU pivot
/// order persist across calls, so Newton iterations after the first pay
/// only a numeric refactorization. Preferred inside stepping loops
/// (runTransient, shooting) that take many steps on one circuit. The
/// Newton iteration body is allocation-free (real-time audited).
RFIC_REALTIME bool integrateStep(circuit::MnaWorkspace& ws,
                                 IntegrationMethod method, Real t0, Real h,
                                 const RVec& x0, const RVec* xPrevStep,
                                 RVec& x1, numeric::RMat* sensitivity,
                                 std::size_t maxNewton = 50, Real tol = 1e-9,
                                 std::size_t* newtonIters = nullptr);

/// Additive white-noise transient (Euler–Maruyama on top of BE): at each
/// step every device noise generator injects an independent Gaussian
/// current of variance  S(op)/(2·h)  (one-sided PSD → per-step variance).
/// Used by the Monte-Carlo jitter validation of Section 3.
TransientResult runNoisyTransient(const MnaSystem& sys, const RVec& x0,
                                  const TransientOptions& opts,
                                  std::uint64_t seed);

}  // namespace rfic::analysis
